//! Dynamically typed vectors holding data in any lattice precision.
//!
//! The mixed-precision pipeline (Section 3.2) tracks a *current working
//! precision* through the five matvec phases; a phase whose configured
//! compute precision differs from the working precision triggers a cast.
//! [`RealBuffer`] and [`ComplexBuffer`] are the storage behind that: a
//! vector tagged with its precision, plus the cast kernels, covering all
//! four tiers of the extended lattice (`h`/`b`/`s`/`d`). Byte counts for
//! the bandwidth model are exposed so fused cast+memory phases can be
//! costed correctly.
//!
//! Cast semantics: every conversion performs exactly one RTNE rounding
//! from the source value into the target storage (see [`crate::half`]
//! for the single-rounding contract of the 16-bit tiers). Widening
//! casts are exact. The `16-bit ↔ f32` pairs run on the batched SIMD
//! kernels in [`crate::simd`]; all pairs are bit-identical to the
//! per-element `Real::from_f64` reference path.

use crate::complex::Complex;
use crate::half::{bf16, f16};
use crate::precision::Precision;
use crate::real::Real;
use crate::with_real;

/// A real vector stored in one of the four precisions.
#[derive(Clone, Debug, PartialEq)]
pub enum RealBuffer {
    F16(Vec<f16>),
    BF16(Vec<bf16>),
    F32(Vec<f32>),
    F64(Vec<f64>),
}

impl From<Vec<f16>> for RealBuffer {
    fn from(v: Vec<f16>) -> Self {
        RealBuffer::F16(v)
    }
}
impl From<Vec<bf16>> for RealBuffer {
    fn from(v: Vec<bf16>) -> Self {
        RealBuffer::BF16(v)
    }
}
impl From<Vec<f32>> for RealBuffer {
    fn from(v: Vec<f32>) -> Self {
        RealBuffer::F32(v)
    }
}
impl From<Vec<f64>> for RealBuffer {
    fn from(v: Vec<f64>) -> Self {
        RealBuffer::F64(v)
    }
}

impl RealBuffer {
    /// Zero-filled buffer of length `n` in precision `p`.
    pub fn zeros(p: Precision, n: usize) -> Self {
        with_real!(p, T => RealBuffer::from(vec![T::ZERO; n]))
    }

    /// Build from `f64` data, rounding if `p` is narrower.
    pub fn from_f64(p: Precision, data: &[f64]) -> Self {
        with_real!(p, T => {
            RealBuffer::from(data.iter().map(|&x| T::from_f64(x)).collect::<Vec<T>>())
        })
    }

    /// Turn `self` into a zero-filled buffer of precision `p` and length
    /// `n`, **reusing the existing allocation** whenever the variant
    /// already matches (the workspace-reuse primitive behind the
    /// zero-allocation `apply_into` paths: after warm-up, a pipeline that
    /// keeps its configuration resets the same storage every apply).
    pub fn reset(&mut self, p: Precision, n: usize) {
        fn fill<T: Real>(v: &mut Vec<T>, n: usize) {
            v.clear();
            v.resize(n, T::ZERO);
        }
        match (p, &mut *self) {
            (Precision::Half, RealBuffer::F16(v)) => fill(v, n),
            (Precision::BFloat16, RealBuffer::BF16(v)) => fill(v, n),
            (Precision::Single, RealBuffer::F32(v)) => fill(v, n),
            (Precision::Double, RealBuffer::F64(v)) => fill(v, n),
            _ => *self = RealBuffer::zeros(p, n),
        }
    }

    /// Like [`RealBuffer::reset`] but without zeroing retained contents:
    /// element values are **unspecified** afterwards. For callers that
    /// overwrite every element before reading — in steady state (variant
    /// and length unchanged) this is O(1), not an O(n) memset per apply.
    pub fn reset_for_overwrite(&mut self, p: Precision, n: usize) {
        fn grow<T: Real>(v: &mut Vec<T>, n: usize) {
            v.resize(n, T::ZERO);
        }
        match (p, &mut *self) {
            (Precision::Half, RealBuffer::F16(v)) => grow(v, n),
            (Precision::BFloat16, RealBuffer::BF16(v)) => grow(v, n),
            (Precision::Single, RealBuffer::F32(v)) => grow(v, n),
            (Precision::Double, RealBuffer::F64(v)) => grow(v, n),
            _ => *self = RealBuffer::zeros(p, n),
        }
    }

    #[inline]
    pub fn len(&self) -> usize {
        match self {
            RealBuffer::F16(v) => v.len(),
            RealBuffer::BF16(v) => v.len(),
            RealBuffer::F32(v) => v.len(),
            RealBuffer::F64(v) => v.len(),
        }
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    #[inline]
    pub fn precision(&self) -> Precision {
        match self {
            RealBuffer::F16(_) => Precision::Half,
            RealBuffer::BF16(_) => Precision::BFloat16,
            RealBuffer::F32(_) => Precision::Single,
            RealBuffer::F64(_) => Precision::Double,
        }
    }

    /// Total payload size in bytes (for the bandwidth model).
    #[inline]
    pub fn bytes(&self) -> usize {
        self.len() * self.precision().real_bytes()
    }

    /// Element as `f64` (test/diagnostic path, not a hot loop).
    #[inline]
    pub fn get(&self, i: usize) -> f64 {
        match self {
            RealBuffer::F16(v) => v[i].to_f64(),
            RealBuffer::BF16(v) => v[i].to_f64(),
            RealBuffer::F32(v) => v[i] as f64,
            RealBuffer::F64(v) => v[i],
        }
    }

    /// Widen/copy out to an `f64` vector (reference-precision view).
    pub fn to_f64_vec(&self) -> Vec<f64> {
        match self {
            RealBuffer::F16(v) => v.iter().map(|&x| x.to_f64()).collect(),
            RealBuffer::BF16(v) => v.iter().map(|&x| x.to_f64()).collect(),
            RealBuffer::F32(v) => v.iter().map(|&x| x as f64).collect(),
            RealBuffer::F64(v) => v.clone(),
        }
    }

    /// The cast kernel: convert to precision `p`. A same-precision cast
    /// is a no-op returning `self` unchanged (the pipeline's fusion logic
    /// never emits those, but the API keeps it total).
    ///
    /// The `16-bit ↔ f32` pairs route through the batched SIMD kernels
    /// ([`crate::simd`]); every other pair is a per-element loop through
    /// `f64`. Both paths are bit-identical to `Real::from_f64` rounding.
    pub fn cast(self, p: Precision) -> Self {
        match (&self, p) {
            (RealBuffer::F16(v), Precision::Single) => {
                let mut out = vec![0f32; v.len()];
                crate::simd::widen_f16_to_f32(v, &mut out);
                return RealBuffer::F32(out);
            }
            (RealBuffer::BF16(v), Precision::Single) => {
                let mut out = vec![0f32; v.len()];
                crate::simd::widen_bf16_to_f32(v, &mut out);
                return RealBuffer::F32(out);
            }
            (RealBuffer::F32(v), Precision::Half) => {
                let mut out = vec![f16::from_bits(0); v.len()];
                crate::simd::narrow_f32_to_f16(v, &mut out);
                return RealBuffer::F16(out);
            }
            (RealBuffer::F32(v), Precision::BFloat16) => {
                let mut out = vec![bf16::from_bits(0); v.len()];
                crate::simd::narrow_f32_to_bf16(v, &mut out);
                return RealBuffer::BF16(out);
            }
            _ => {}
        }
        if self.precision() == p {
            return self;
        }
        with_real!(p, T => {
            let out: Vec<T> = match &self {
                RealBuffer::F16(v) => v.iter().map(|&x| T::from_f64(x.to_f64())).collect(),
                RealBuffer::BF16(v) => v.iter().map(|&x| T::from_f64(x.to_f64())).collect(),
                RealBuffer::F32(v) => v.iter().map(|&x| T::from_f64(x as f64)).collect(),
                RealBuffer::F64(v) => v.iter().map(|&x| T::from_f64(x)).collect(),
            };
            RealBuffer::from(out)
        })
    }

    pub fn as_f16(&self) -> Option<&[f16]> {
        match self {
            RealBuffer::F16(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_bf16(&self) -> Option<&[bf16]> {
        match self {
            RealBuffer::BF16(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_f32(&self) -> Option<&[f32]> {
        match self {
            RealBuffer::F32(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<&[f64]> {
        match self {
            RealBuffer::F64(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_f16_mut(&mut self) -> Option<&mut [f16]> {
        match self {
            RealBuffer::F16(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_bf16_mut(&mut self) -> Option<&mut [bf16]> {
        match self {
            RealBuffer::BF16(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_f32_mut(&mut self) -> Option<&mut [f32]> {
        match self {
            RealBuffer::F32(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_f64_mut(&mut self) -> Option<&mut [f64]> {
        match self {
            RealBuffer::F64(v) => Some(v),
            _ => None,
        }
    }

    /// Elementwise accumulate `self += other`, in `self`'s precision
    /// (16-bit accumulators round after every add — the storage-rounding
    /// compute model). Used by the phase-5 reduction when summing partial
    /// outputs.
    pub fn accumulate(&mut self, other: &RealBuffer) {
        assert_eq!(self.len(), other.len(), "accumulate length mismatch");
        fn acc<T: Real>(v: &mut [T], other: &RealBuffer) {
            for (i, x) in v.iter_mut().enumerate() {
                *x += T::from_f64(other.get(i));
            }
        }
        match self {
            RealBuffer::F16(v) => acc(v, other),
            RealBuffer::BF16(v) => acc(v, other),
            RealBuffer::F32(v) => acc(v, other),
            RealBuffer::F64(v) => acc(v, other),
        }
    }
}

/// A complex vector stored in one of the four precisions.
#[derive(Clone, Debug, PartialEq)]
pub enum ComplexBuffer {
    C16(Vec<Complex<f16>>),
    CB16(Vec<Complex<bf16>>),
    C32(Vec<Complex<f32>>),
    C64(Vec<Complex<f64>>),
}

impl From<Vec<Complex<f16>>> for ComplexBuffer {
    fn from(v: Vec<Complex<f16>>) -> Self {
        ComplexBuffer::C16(v)
    }
}
impl From<Vec<Complex<bf16>>> for ComplexBuffer {
    fn from(v: Vec<Complex<bf16>>) -> Self {
        ComplexBuffer::CB16(v)
    }
}
impl From<Vec<Complex<f32>>> for ComplexBuffer {
    fn from(v: Vec<Complex<f32>>) -> Self {
        ComplexBuffer::C32(v)
    }
}
impl From<Vec<Complex<f64>>> for ComplexBuffer {
    fn from(v: Vec<Complex<f64>>) -> Self {
        ComplexBuffer::C64(v)
    }
}

impl ComplexBuffer {
    pub fn zeros(p: Precision, n: usize) -> Self {
        with_real!(p, T => ComplexBuffer::from(vec![Complex::<T>::zero(); n]))
    }

    pub fn from_c64(p: Precision, data: &[Complex<f64>]) -> Self {
        with_real!(p, T => {
            ComplexBuffer::from(data.iter().map(|z| z.cast::<T>()).collect::<Vec<_>>())
        })
    }

    /// Turn `self` into a zero-filled buffer of precision `p` and length
    /// `n`, reusing the existing allocation when the variant matches (see
    /// [`RealBuffer::reset`]).
    pub fn reset(&mut self, p: Precision, n: usize) {
        fn fill<T: Real>(v: &mut Vec<Complex<T>>, n: usize) {
            v.clear();
            v.resize(n, Complex::zero());
        }
        match (p, &mut *self) {
            (Precision::Half, ComplexBuffer::C16(v)) => fill(v, n),
            (Precision::BFloat16, ComplexBuffer::CB16(v)) => fill(v, n),
            (Precision::Single, ComplexBuffer::C32(v)) => fill(v, n),
            (Precision::Double, ComplexBuffer::C64(v)) => fill(v, n),
            _ => *self = ComplexBuffer::zeros(p, n),
        }
    }

    /// Like [`ComplexBuffer::reset`] but without zeroing retained
    /// contents (see [`RealBuffer::reset_for_overwrite`]).
    pub fn reset_for_overwrite(&mut self, p: Precision, n: usize) {
        fn grow<T: Real>(v: &mut Vec<Complex<T>>, n: usize) {
            v.resize(n, Complex::zero());
        }
        match (p, &mut *self) {
            (Precision::Half, ComplexBuffer::C16(v)) => grow(v, n),
            (Precision::BFloat16, ComplexBuffer::CB16(v)) => grow(v, n),
            (Precision::Single, ComplexBuffer::C32(v)) => grow(v, n),
            (Precision::Double, ComplexBuffer::C64(v)) => grow(v, n),
            _ => *self = ComplexBuffer::zeros(p, n),
        }
    }

    #[inline]
    pub fn len(&self) -> usize {
        match self {
            ComplexBuffer::C16(v) => v.len(),
            ComplexBuffer::CB16(v) => v.len(),
            ComplexBuffer::C32(v) => v.len(),
            ComplexBuffer::C64(v) => v.len(),
        }
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    #[inline]
    pub fn precision(&self) -> Precision {
        match self {
            ComplexBuffer::C16(_) => Precision::Half,
            ComplexBuffer::CB16(_) => Precision::BFloat16,
            ComplexBuffer::C32(_) => Precision::Single,
            ComplexBuffer::C64(_) => Precision::Double,
        }
    }

    #[inline]
    pub fn bytes(&self) -> usize {
        self.len() * self.precision().complex_bytes()
    }

    #[inline]
    pub fn get(&self, i: usize) -> Complex<f64> {
        match self {
            ComplexBuffer::C16(v) => v[i].cast(),
            ComplexBuffer::CB16(v) => v[i].cast(),
            ComplexBuffer::C32(v) => v[i].cast(),
            ComplexBuffer::C64(v) => v[i],
        }
    }

    pub fn to_c64_vec(&self) -> Vec<Complex<f64>> {
        match self {
            ComplexBuffer::C16(v) => v.iter().map(|z| z.cast()).collect(),
            ComplexBuffer::CB16(v) => v.iter().map(|z| z.cast()).collect(),
            ComplexBuffer::C32(v) => v.iter().map(|z| z.cast()).collect(),
            ComplexBuffer::C64(v) => v.clone(),
        }
    }

    /// The complex cast kernel; the `16-bit ↔ f32` pairs run the batched
    /// SIMD conversions on the interleaved storage viewed as a flat real
    /// slice (see [`RealBuffer::cast`]).
    pub fn cast(self, p: Precision) -> Self {
        use crate::complex::{as_flat, as_flat_mut};
        match (&self, p) {
            (ComplexBuffer::C16(v), Precision::Single) => {
                let mut out = vec![Complex::<f32>::zero(); v.len()];
                crate::simd::widen_f16_to_f32(as_flat(v), as_flat_mut(&mut out));
                return ComplexBuffer::C32(out);
            }
            (ComplexBuffer::CB16(v), Precision::Single) => {
                let mut out = vec![Complex::<f32>::zero(); v.len()];
                crate::simd::widen_bf16_to_f32(as_flat(v), as_flat_mut(&mut out));
                return ComplexBuffer::C32(out);
            }
            (ComplexBuffer::C32(v), Precision::Half) => {
                let mut out = vec![Complex::<f16>::zero(); v.len()];
                crate::simd::narrow_f32_to_f16(as_flat(v), as_flat_mut(&mut out));
                return ComplexBuffer::C16(out);
            }
            (ComplexBuffer::C32(v), Precision::BFloat16) => {
                let mut out = vec![Complex::<bf16>::zero(); v.len()];
                crate::simd::narrow_f32_to_bf16(as_flat(v), as_flat_mut(&mut out));
                return ComplexBuffer::CB16(out);
            }
            _ => {}
        }
        if self.precision() == p {
            return self;
        }
        with_real!(p, T => {
            let out: Vec<Complex<T>> = match &self {
                ComplexBuffer::C16(v) => v.iter().map(|z| z.cast()).collect(),
                ComplexBuffer::CB16(v) => v.iter().map(|z| z.cast()).collect(),
                ComplexBuffer::C32(v) => v.iter().map(|z| z.cast()).collect(),
                ComplexBuffer::C64(v) => v.iter().map(|z| z.cast()).collect(),
            };
            ComplexBuffer::from(out)
        })
    }

    pub fn as_c16(&self) -> Option<&[Complex<f16>]> {
        match self {
            ComplexBuffer::C16(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_cb16(&self) -> Option<&[Complex<bf16>]> {
        match self {
            ComplexBuffer::CB16(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_c32(&self) -> Option<&[Complex<f32>]> {
        match self {
            ComplexBuffer::C32(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_c64(&self) -> Option<&[Complex<f64>]> {
        match self {
            ComplexBuffer::C64(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_c16_mut(&mut self) -> Option<&mut [Complex<f16>]> {
        match self {
            ComplexBuffer::C16(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_cb16_mut(&mut self) -> Option<&mut [Complex<bf16>]> {
        match self {
            ComplexBuffer::CB16(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_c32_mut(&mut self) -> Option<&mut [Complex<f32>]> {
        match self {
            ComplexBuffer::C32(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_c64_mut(&mut self) -> Option<&mut [Complex<f64>]> {
        match self {
            ComplexBuffer::C64(v) => Some(v),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_zeros_and_len() {
        let b = RealBuffer::zeros(Precision::Single, 7);
        assert_eq!(b.len(), 7);
        assert_eq!(b.precision(), Precision::Single);
        assert_eq!(b.bytes(), 28);
        assert!(!b.is_empty());
        assert_eq!(b.get(3), 0.0);
        let h = RealBuffer::zeros(Precision::Half, 5);
        assert_eq!(h.precision(), Precision::Half);
        assert_eq!(h.bytes(), 10);
        assert_eq!(h.get(0), 0.0);
    }

    #[test]
    fn real_cast_loses_then_keeps_bits() {
        // A double that is not representable in single.
        let x = 1.0 + 2f64.powi(-40);
        let b = RealBuffer::from_f64(Precision::Double, &[x]);
        let narrowed = b.clone().cast(Precision::Single);
        assert_ne!(narrowed.get(0), x);
        // Widening back does not recover the bits.
        let widened = narrowed.cast(Precision::Double);
        assert_eq!(widened.get(0), 1.0);
        // Same-precision cast is identity.
        assert_eq!(b.clone().cast(Precision::Double), b);
    }

    #[test]
    fn half_tier_casts() {
        // 1 + 2^-9 is representable in f16 (ε = 2^-10) but not in bf16
        // (ε = 2^-7) — the tiers are not ordered by accuracy.
        let x = 1.0 + 2f64.powi(-9);
        let b = RealBuffer::from_f64(Precision::Half, &[x]);
        assert_eq!(b.get(0), x);
        let bb = RealBuffer::from_f64(Precision::BFloat16, &[x]);
        assert_eq!(bb.get(0), 1.0);
        // Widening a 16-bit tier into f32/f64 is exact.
        let w = b.clone().cast(Precision::Single);
        assert_eq!(w.precision(), Precision::Single);
        assert_eq!(w.get(0), x);
        // f16 overflows where bf16 keeps the f32 range.
        let big = RealBuffer::from_f64(Precision::Double, &[1e6]);
        assert!(big.clone().cast(Precision::Half).get(0).is_infinite());
        assert!(big.cast(Precision::BFloat16).get(0).is_finite());
    }

    #[test]
    fn real_accumulate_mixed_precision() {
        let mut acc = RealBuffer::from_f64(Precision::Double, &[1.0, 2.0]);
        let other = RealBuffer::from_f64(Precision::Single, &[0.5, 0.25]);
        acc.accumulate(&other);
        assert_eq!(acc.to_f64_vec(), vec![1.5, 2.25]);
        // A half accumulator rounds after every add.
        let mut hacc = RealBuffer::from_f64(Precision::Half, &[1.0]);
        hacc.accumulate(&RealBuffer::from_f64(Precision::Double, &[2f64.powi(-12)]));
        assert_eq!(hacc.get(0), 1.0, "sub-ε increment must be swallowed");
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn accumulate_length_mismatch_panics() {
        let mut acc = RealBuffer::zeros(Precision::Double, 2);
        let other = RealBuffer::zeros(Precision::Double, 3);
        acc.accumulate(&other);
    }

    #[test]
    fn complex_roundtrip() {
        let data = vec![Complex::new(1.5, -2.5), Complex::new(0.0, 1.0)];
        let b = ComplexBuffer::from_c64(Precision::Double, &data);
        assert_eq!(b.to_c64_vec(), data);
        assert_eq!(b.bytes(), 32);
        let s = b.cast(Precision::Single);
        assert_eq!(s.precision(), Precision::Single);
        assert_eq!(s.bytes(), 16);
        // These values are exactly representable in f32.
        assert_eq!(s.to_c64_vec(), data);
        // ... and in both 16-bit tiers.
        let h = ComplexBuffer::from_c64(Precision::Half, &data);
        assert_eq!(h.bytes(), 8);
        assert_eq!(h.to_c64_vec(), data);
        let bb = ComplexBuffer::from_c64(Precision::BFloat16, &data);
        assert_eq!(bb.to_c64_vec(), data);
    }

    #[test]
    fn accessors_match_variant() {
        let b = ComplexBuffer::zeros(Precision::Single, 4);
        assert!(b.as_c32().is_some());
        assert!(b.as_c64().is_none());
        assert!(b.as_c16().is_none());
        let mut b = b.cast(Precision::Double);
        assert!(b.as_c64_mut().is_some());
        assert!(b.as_c32_mut().is_none());
        let h = ComplexBuffer::zeros(Precision::Half, 2);
        assert!(h.as_c16().is_some() && h.as_cb16().is_none());
        let r = RealBuffer::zeros(Precision::BFloat16, 2);
        assert!(r.as_bf16().is_some() && r.as_f16().is_none());
    }

    #[test]
    fn reset_reuses_matching_storage() {
        let mut b = RealBuffer::from_f64(Precision::Single, &[1.0, 2.0, 3.0, 4.0]);
        let ptr_before = b.as_f32().unwrap().as_ptr();
        b.reset(Precision::Single, 3);
        assert_eq!(b.len(), 3);
        assert!(b.to_f64_vec().iter().all(|&x| x == 0.0), "reset must zero-fill");
        assert_eq!(b.as_f32().unwrap().as_ptr(), ptr_before, "same-variant reset keeps storage");
        // Variant switch replaces the allocation.
        b.reset(Precision::Half, 2);
        assert_eq!(b.precision(), Precision::Half);
        assert_eq!(b.len(), 2);
        let mut c = ComplexBuffer::from_c64(Precision::Double, &[Complex::new(1.0, -1.0)]);
        let cp = c.as_c64().unwrap().as_ptr();
        c.reset(Precision::Double, 1);
        assert_eq!(c.get(0), Complex::zero());
        assert_eq!(c.as_c64().unwrap().as_ptr(), cp);
        c.reset(Precision::BFloat16, 4);
        assert_eq!(c.precision(), Precision::BFloat16);
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn widening_casts_are_exact_roundtrips() {
        for p in Precision::ALL {
            let src = RealBuffer::from_f64(p, &[0.3125, -7.75, 1.0e-2]);
            for target in Precision::ALL {
                if p.widens_exactly_to(target) {
                    let roundtrip = src.clone().cast(target).cast(p);
                    assert_eq!(roundtrip, src, "{p} → {target} → {p}");
                }
            }
        }
    }

    /// The SIMD-routed `16-bit ↔ f32` cast pairs must match the generic
    /// per-element `Real::from_f64` path bit for bit (odd length so the
    /// vector body and scalar tail are both exercised).
    #[test]
    fn simd_routed_casts_match_generic_path() {
        use crate::rng::SplitMix64;
        let mut rng = SplitMix64::new(0x5eed);
        let xs: Vec<f32> = (0..1027).map(|_| rng.uniform(-70000.0, 70000.0) as f32).collect();

        let src = RealBuffer::F32(xs.clone());
        let h = src.clone().cast(Precision::Half);
        let b = src.clone().cast(Precision::BFloat16);
        for (i, &x) in xs.iter().enumerate() {
            assert!(h.as_f16().unwrap()[i].bit_eq(f16::from_f64(x as f64)));
            assert!(b.as_bf16().unwrap()[i].bit_eq(bf16::from_f64(x as f64)));
        }
        let wh = h.clone().cast(Precision::Single);
        let wb = b.clone().cast(Precision::Single);
        for i in 0..xs.len() {
            assert_eq!(wh.as_f32().unwrap()[i], h.as_f16().unwrap()[i].to_f64() as f32);
            assert_eq!(wb.as_f32().unwrap()[i], b.as_bf16().unwrap()[i].to_f64() as f32);
        }

        let zs: Vec<Complex<f32>> = xs.chunks_exact(2).map(|c| Complex::new(c[0], c[1])).collect();
        let csrc = ComplexBuffer::C32(zs.clone());
        let ch = csrc.clone().cast(Precision::Half);
        let cb = csrc.clone().cast(Precision::BFloat16);
        for (i, z) in zs.iter().enumerate() {
            let want: Complex<f16> = z.cast();
            let got = ch.as_c16().unwrap()[i];
            assert!(got.re.bit_eq(want.re) && got.im.bit_eq(want.im));
            let want: Complex<bf16> = z.cast();
            let got = cb.as_cb16().unwrap()[i];
            assert!(got.re.bit_eq(want.re) && got.im.bit_eq(want.im));
        }
        let cwh = ch.clone().cast(Precision::Single);
        for (i, z) in ch.as_c16().unwrap().iter().enumerate() {
            assert_eq!(cwh.as_c32().unwrap()[i], z.cast::<f32>());
        }
    }
}
