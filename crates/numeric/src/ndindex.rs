//! Row-major N-dimensional index arithmetic and axis-rotation layout
//! kernels.
//!
//! The multi-level Toeplitz operators work on dense row-major grids
//! (last axis contiguous) and transform one axis at a time: FFT the
//! contiguous last axis, then rotate that axis to the front so the next
//! axis becomes contiguous. After `dims.len()` rotations the grid is
//! back in its original layout with every axis visited exactly once.
//! These helpers are the index math for that scheme; they are kept in
//! the numeric crate so the FFT driver and the operator layer agree on
//! one definition of the layout.

/// Product of all extents — the flat length of a row-major grid.
/// Returns 1 for an empty dims list (the 0-d grid holds one scalar).
pub fn total_len(dims: &[usize]) -> usize {
    dims.iter().product()
}

/// Row-major strides for `dims`: `strides[i]` is the flat distance
/// between neighbours along axis `i` (last axis has stride 1).
pub fn strides_row_major(dims: &[usize]) -> Vec<usize> {
    let mut strides = vec![1usize; dims.len()];
    for i in (0..dims.len().saturating_sub(1)).rev() {
        strides[i] = strides[i + 1] * dims[i + 1];
    }
    strides
}

/// Flat offset of a multi-index under row-major strides.
pub fn compose(idx: &[usize], strides: &[usize]) -> usize {
    debug_assert_eq!(idx.len(), strides.len());
    idx.iter().zip(strides).map(|(i, s)| i * s).sum()
}

/// Decompose a flat row-major offset into a multi-index (written into
/// `out`, which must have `dims.len()` entries).
pub fn decompose(flat: usize, dims: &[usize], out: &mut [usize]) {
    debug_assert_eq!(dims.len(), out.len());
    let mut rem = flat;
    for i in (0..dims.len()).rev() {
        out[i] = rem % dims[i];
        rem /= dims[i];
    }
    debug_assert_eq!(rem, 0, "flat index out of range");
}

/// Rotate the last axis to the front: for a source grid with `last` as
/// its final extent (flat length `lead * last`), write
/// `dst[j, r] = src[r, j]` where `r` ranges over the `lead` leading
/// positions. This is a `(lead × last) → (last × lead)` transpose; on a
/// row-major N-d grid it moves the contiguous last axis to the slowest
/// position while preserving the relative order of the other axes.
/// Allocation-free; `src` and `dst` must both have length `lead * last`.
pub fn rotate_last_to_front<T: Copy>(lead: usize, last: usize, src: &[T], dst: &mut [T]) {
    assert_eq!(src.len(), lead * last, "rotate: src length");
    assert_eq!(dst.len(), lead * last, "rotate: dst length");
    // Walk the source contiguously; scatter into the destination. For
    // the grid sizes the operators use, the simple loop is bandwidth
    // bound either way and keeps the kernel obviously correct.
    for r in 0..lead {
        let row = &src[r * last..(r + 1) * last];
        for (j, &v) in row.iter().enumerate() {
            dst[j * lead + r] = v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_and_compose_roundtrip() {
        let dims = [3usize, 4, 5];
        let strides = strides_row_major(&dims);
        assert_eq!(strides, vec![20, 5, 1]);
        assert_eq!(total_len(&dims), 60);
        let mut idx = [0usize; 3];
        for flat in 0..60 {
            decompose(flat, &dims, &mut idx);
            assert!(idx.iter().zip(&dims).all(|(i, d)| i < d));
            assert_eq!(compose(&idx, &strides), flat);
        }
    }

    #[test]
    fn zero_dim_grid_is_a_scalar() {
        assert_eq!(total_len(&[]), 1);
        assert_eq!(strides_row_major(&[]), Vec::<usize>::new());
    }

    #[test]
    fn rotation_is_a_transpose() {
        // 2×3 grid: [[0,1,2],[3,4,5]] → rotating the last axis to the
        // front gives the 3×2 transpose [[0,3],[1,4],[2,5]].
        let src = [0, 1, 2, 3, 4, 5];
        let mut dst = [0; 6];
        rotate_last_to_front(2, 3, &src, &mut dst);
        assert_eq!(dst, [0, 3, 1, 4, 2, 5]);
    }

    #[test]
    fn n_rotations_restore_the_layout() {
        // Rotating last-to-front dims.len() times must be the identity.
        let dims = [2usize, 3, 4];
        let n = total_len(&dims);
        let src: Vec<u32> = (0..n as u32).collect();
        let mut a = src.clone();
        let mut b = vec![0u32; n];
        for step in 0..dims.len() {
            let last = dims[dims.len() - 1 - step];
            rotate_last_to_front(n / last, last, &a, &mut b);
            std::mem::swap(&mut a, &mut b);
        }
        assert_eq!(a, src);
    }
}
