//! Software-emulated half-precision scalars: IEEE-754 binary16 ([`struct@f16`])
//! and bfloat16 ([`struct@bf16`]).
//!
//! The paper's dynamic mixed-precision framework (Section 3.2) restricts
//! itself to {FP32, FP64} because complex half-precision FFT/BLAS library
//! support was too sparse; tcFFT and the mixed-precision MRI FFT work
//! show the headroom half precision leaves on the table. These types open
//! the precision lattice to four tiers *in software*, pending a GPU
//! tensor-core backend:
//!
//! * **storage** is the exact 16-bit format (`u16` bit patterns);
//! * **arithmetic** is performed in `f32` and the result is rounded back
//!   to the 16-bit format after every operation (round-to-nearest-even),
//!   which is precisely the rounding model of a GPU that computes half
//!   operands in FP32 accumulators and stores half results.
//!
//! Every narrowing conversion in this module is a **single**
//! round-to-nearest-even step from the source format, bit-exact including
//! subnormals, infinities, and signed zeros (`f32` NaNs are quieted; the
//! bf16 path keeps the top payload bits, the f16 path drops the payload).
//! In particular `f64 → f16`/`f64 → bf16` round **directly** from the
//! f64 significand ([`f64_to_f16_bits`]/[`f64_to_bf16_bits`]) — routing
//! through `f32` first would double-round, and there are f64 values for
//! which the two paths provably disagree (see the regression tests).
//! Widening conversions (`f16/bf16 → f32 → f64`) are always exact, so
//! narrowing an `f64` that was widened from an `f32` still agrees
//! bit-for-bit with the `f32` entry points.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

use crate::precision::Precision;
use crate::real::Real;

/// Round an `f32` to IEEE-754 binary16 bits (round-to-nearest-even).
pub fn f32_to_f16_bits(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xff) as i32;
    let frac = bits & 0x007f_ffff;

    if exp == 0xff {
        // Infinity keeps its sign; NaN is quieted with payload dropped.
        return if frac == 0 { sign | 0x7c00 } else { sign | 0x7e00 };
    }

    let e = exp - 127; // unbiased exponent of the f32 value

    if e >= 16 {
        // Above the f16 binade range: rounds to infinity.
        return sign | 0x7c00;
    }

    if e >= -14 {
        // Normal f16 range: keep 10 mantissa bits, RTNE on the 13 dropped.
        let mant = frac >> 13;
        let rest = frac & 0x1fff;
        let mut h = ((((e + 15) as u32) << 10) | mant) as u16;
        if rest > 0x1000 || (rest == 0x1000 && (mant & 1) == 1) {
            // May carry into the exponent — that is the correct round-up
            // to the next binade (or to infinity at the top).
            h += 1;
        }
        return sign | h;
    }

    if e >= -25 {
        // Subnormal f16: value = mant·2⁻²⁴ after shifting the full 24-bit
        // significand right by (-e - 1) bits, RTNE on the dropped bits.
        let full = frac | 0x0080_0000;
        let shift = (-e - 1) as u32;
        let mant = full >> shift;
        let rest = full & ((1u32 << shift) - 1);
        let halfway = 1u32 << (shift - 1);
        let mut h = mant as u16;
        if rest > halfway || (rest == halfway && (mant & 1) == 1) {
            h += 1; // may round up to the smallest normal — correct
        }
        return sign | h;
    }

    // Below half the smallest subnormal (this also covers every f32
    // subnormal input): rounds to signed zero.
    sign
}

/// Widen IEEE-754 binary16 bits to an `f32` (always exact).
pub fn f16_bits_to_f32(h: u16) -> f32 {
    let sign = ((h & 0x8000) as u32) << 16;
    let exp = ((h >> 10) & 0x1f) as u32;
    let frac = (h & 0x3ff) as u32;
    let bits = if exp == 0x1f {
        // Inf / NaN.
        sign | 0x7f80_0000 | (frac << 13)
    } else if exp == 0 {
        if frac == 0 {
            sign // signed zero
        } else {
            // Subnormal: normalize into an f32 normal.
            let mut e = -14i32;
            let mut f = frac;
            while f & 0x400 == 0 {
                f <<= 1;
                e -= 1;
            }
            sign | (((e + 127) as u32) << 23) | ((f & 0x3ff) << 13)
        }
    } else {
        sign | ((exp + 127 - 15) << 23) | (frac << 13)
    };
    f32::from_bits(bits)
}

/// Round an `f32` to bfloat16 bits (round-to-nearest-even): the top 16
/// bits of the f32 representation, rounded.
pub fn f32_to_bf16_bits(x: f32) -> u16 {
    let bits = x.to_bits();
    if bits & 0x7fff_ffff > 0x7f80_0000 {
        // NaN: quiet it, keep the sign and top payload bits.
        return ((bits >> 16) as u16) | 0x0040;
    }
    let lsb = (bits >> 16) & 1;
    ((bits + 0x7fff + lsb) >> 16) as u16
}

/// Widen bfloat16 bits to an `f32` (always exact — bf16 is the top half
/// of the f32 format).
pub fn bf16_bits_to_f32(b: u16) -> f32 {
    f32::from_bits((b as u32) << 16)
}

/// Shared core of the direct `f64 → 16-bit` narrowings: one RTNE rounding
/// of the f64 significand into a format with `mant_bits` significand bits
/// and minimum normal exponent `emin`. Infinities are handled here; NaNs
/// must be filtered by the caller (the two formats quiet them differently).
fn narrow_f64_bits(bits: u64, mant_bits: u32, emin: i32) -> u16 {
    let sign = ((bits >> 48) & 0x8000) as u16;
    let exp = ((bits >> 52) & 0x7ff) as i32;
    let frac = bits & 0x000f_ffff_ffff_ffff;
    let bias = 1 - emin; // 15 for f16, 127 for bf16
    let inf_bits = ((2 * bias + 1) as u16) << mant_bits;

    if exp == 0x7ff {
        // Infinity (NaN was filtered by the caller).
        return sign | inf_bits;
    }

    let e = exp - 1023; // unbiased exponent of the f64 value
    let drop = 52 - mant_bits; // bits dropped on the normal path

    if e > bias {
        // Above the target's binade range: rounds to infinity.
        return sign | inf_bits;
    }

    if e >= emin {
        // Normal target range: keep `mant_bits`, RTNE on the rest. The
        // round-up may carry into the exponent — that is the correct
        // round to the next binade (or to infinity at the top).
        let mant = (frac >> drop) as u16;
        let rest = frac & ((1u64 << drop) - 1);
        let halfway = 1u64 << (drop - 1);
        let mut h = (((e - emin + 1) as u16) << mant_bits) | mant;
        if rest > halfway || (rest == halfway && (mant & 1) == 1) {
            h += 1;
        }
        return sign | h;
    }

    if e >= emin - mant_bits as i32 - 1 {
        // Subnormal target: shift the full 53-bit significand down so the
        // unit in the last place is 2^(emin - mant_bits), RTNE on the
        // dropped bits (may round up to the smallest normal — correct).
        let full = frac | (1u64 << 52);
        let shift = (drop as i32 + (emin - e)) as u32; // ≤ 53
        let mant = (full >> shift) as u16;
        let rest = full & ((1u64 << shift) - 1);
        let halfway = 1u64 << (shift - 1);
        let mut h = mant;
        if rest > halfway || (rest == halfway && (mant & 1) == 1) {
            h += 1;
        }
        return sign | h;
    }

    // Below half the smallest subnormal (this also covers every f64
    // subnormal input): rounds to signed zero.
    sign
}

/// Round an `f64` to IEEE-754 binary16 bits with a **single** RTNE step.
///
/// This is *not* equivalent to `f32_to_f16_bits(x as f32)`: the two-step
/// route rounds twice, and e.g. `1 + 2⁻¹¹ + 2⁻²⁶` lands on the f16 tie
/// point after the f32 rounding (→ `1.0`) even though the original value
/// is strictly above it (→ `1 + 2⁻¹⁰`).
pub fn f64_to_f16_bits(x: f64) -> u16 {
    let bits = x.to_bits();
    if bits & 0x7fff_ffff_ffff_ffff > 0x7ff0_0000_0000_0000 {
        // NaN: quieted with payload dropped, as in the f32 entry point.
        return (((bits >> 48) & 0x8000) as u16) | 0x7e00;
    }
    narrow_f64_bits(bits, 10, -14)
}

/// Round an `f64` to bfloat16 bits with a **single** RTNE step (see
/// [`f64_to_f16_bits`] for why two-step rounding through `f32` differs).
pub fn f64_to_bf16_bits(x: f64) -> u16 {
    let bits = x.to_bits();
    if bits & 0x7fff_ffff_ffff_ffff > 0x7ff0_0000_0000_0000 {
        // NaN: quiet it, keep the sign and top payload bits, as in the
        // f32 entry point.
        return (((bits >> 48) & 0x8000) as u16) | 0x7f80 | 0x0040 | (((bits >> 45) & 0x3f) as u16);
    }
    narrow_f64_bits(bits, 7, -126)
}

macro_rules! define_half {
    (
        $(#[$doc:meta])*
        $name:ident, $to_f32:ident, $from_f32:ident, $from_f64:ident,
        exp_mask: $exp_mask:expr,
        zero: $zero:expr, one: $one:expr, two: $two:expr,
        epsilon: $eps:expr, pi: $pi:expr,
        precision: $prec:expr
    ) => {
        $(#[$doc])*
        #[allow(non_camel_case_types)]
        #[derive(Clone, Copy, Default)]
        #[repr(transparent)]
        pub struct $name(u16);

        impl $name {
            /// Reinterpret raw bits as this format.
            #[inline(always)]
            pub const fn from_bits(bits: u16) -> Self {
                $name(bits)
            }

            /// The raw 16-bit pattern.
            #[inline(always)]
            pub const fn to_bits(self) -> u16 {
                self.0
            }

            /// Round an `f32` into this format (RTNE).
            #[inline(always)]
            pub fn from_f32(x: f32) -> Self {
                $name($from_f32(x))
            }

            /// Widen to `f32` (exact).
            #[inline(always)]
            pub fn to_f32(self) -> f32 {
                $to_f32(self.0)
            }

            /// Bitwise equality on the 16-bit storage pattern.
            ///
            /// [`PartialEq`] follows IEEE value semantics (`-0 == +0`,
            /// `NaN != NaN`), while the determinism gates digest raw bit
            /// patterns — the two disagree exactly on zeros and NaNs.
            /// Use `bit_eq` when "same bits" is the contract (digest
            /// comparisons, golden outputs, cache keys).
            #[inline(always)]
            pub const fn bit_eq(self, other: Self) -> bool {
                self.0 == other.0
            }
        }

        // IEEE value semantics: `-0 == +0` even though the bit patterns
        // differ, and `NaN != NaN` even when the bit patterns agree. Code
        // that compares *bit digests* (the determinism gates) must use
        // [`Self::bit_eq`]/[`Self::to_bits`] instead — value equality and
        // bit equality intentionally disagree on zeros and NaNs, and
        // nowhere else (kernels never produce -0.0/NaN from finite
        // inputs, so digest comparisons stay meaningful).
        impl PartialEq for $name {
            #[inline(always)]
            fn eq(&self, other: &Self) -> bool {
                self.to_f32() == other.to_f32()
            }
        }

        impl PartialOrd for $name {
            #[inline(always)]
            fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
                self.to_f32().partial_cmp(&other.to_f32())
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:?}", self.to_f32())
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}", self.to_f32())
            }
        }

        impl Neg for $name {
            type Output = Self;
            #[inline(always)]
            fn neg(self) -> Self {
                $name(self.0 ^ 0x8000) // exact sign flip
            }
        }

        impl Add for $name {
            type Output = Self;
            #[inline(always)]
            fn add(self, rhs: Self) -> Self {
                Self::from_f32(self.to_f32() + rhs.to_f32())
            }
        }

        impl Sub for $name {
            type Output = Self;
            #[inline(always)]
            fn sub(self, rhs: Self) -> Self {
                Self::from_f32(self.to_f32() - rhs.to_f32())
            }
        }

        impl Mul for $name {
            type Output = Self;
            #[inline(always)]
            fn mul(self, rhs: Self) -> Self {
                Self::from_f32(self.to_f32() * rhs.to_f32())
            }
        }

        impl Div for $name {
            type Output = Self;
            #[inline(always)]
            fn div(self, rhs: Self) -> Self {
                Self::from_f32(self.to_f32() / rhs.to_f32())
            }
        }

        impl AddAssign for $name {
            #[inline(always)]
            fn add_assign(&mut self, rhs: Self) {
                *self = *self + rhs;
            }
        }

        impl SubAssign for $name {
            #[inline(always)]
            fn sub_assign(&mut self, rhs: Self) {
                *self = *self - rhs;
            }
        }

        impl MulAssign for $name {
            #[inline(always)]
            fn mul_assign(&mut self, rhs: Self) {
                *self = *self * rhs;
            }
        }

        impl DivAssign for $name {
            #[inline(always)]
            fn div_assign(&mut self, rhs: Self) {
                *self = *self / rhs;
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                // Summed in the type itself — every partial sum rounds to
                // 16 bits, matching the storage-rounding compute model.
                iter.fold(Self::from_bits($zero), Add::add)
            }
        }

        impl Real for $name {
            const ZERO: Self = $name($zero);
            const ONE: Self = $name($one);
            const TWO: Self = $name($two);
            const EPSILON: Self = $name($eps);
            const PI: Self = $name($pi);
            const PRECISION: Precision = $prec;
            const BYTES: usize = 2;

            #[inline(always)]
            fn from_f64(x: f64) -> Self {
                // Single RTNE rounding direct from the f64 significand —
                // never through f32, which would double-round.
                $name($from_f64(x))
            }
            #[inline(always)]
            fn to_f64(self) -> f64 {
                self.to_f32() as f64
            }
            #[inline(always)]
            fn abs(self) -> Self {
                $name(self.0 & 0x7fff) // exact sign clear
            }
            #[inline(always)]
            fn sqrt(self) -> Self {
                Self::from_f32(self.to_f32().sqrt())
            }
            #[inline(always)]
            fn ln(self) -> Self {
                Self::from_f32(self.to_f32().ln())
            }
            #[inline(always)]
            fn exp(self) -> Self {
                Self::from_f32(self.to_f32().exp())
            }
            #[inline(always)]
            fn sin(self) -> Self {
                Self::from_f32(self.to_f32().sin())
            }
            #[inline(always)]
            fn cos(self) -> Self {
                Self::from_f32(self.to_f32().cos())
            }
            #[inline(always)]
            fn sin_cos(self) -> (Self, Self) {
                let (s, c) = self.to_f32().sin_cos();
                (Self::from_f32(s), Self::from_f32(c))
            }
            #[inline(always)]
            fn mul_add(self, a: Self, b: Self) -> Self {
                // One f32 FMA, one rounding to 16 bits — the accumulator
                // model of half-precision tensor hardware.
                Self::from_f32(self.to_f32().mul_add(a.to_f32(), b.to_f32()))
            }
            #[inline(always)]
            fn maximum(self, other: Self) -> Self {
                Self::from_f32(self.to_f32().max(other.to_f32()))
            }
            #[inline(always)]
            fn minimum(self, other: Self) -> Self {
                Self::from_f32(self.to_f32().min(other.to_f32()))
            }
            #[inline(always)]
            fn recip(self) -> Self {
                Self::from_f32(self.to_f32().recip())
            }
            #[inline(always)]
            fn is_finite(self) -> bool {
                self.0 & $exp_mask != $exp_mask
            }
        }
    };
}

define_half!(
    /// IEEE-754 binary16: 1 sign, 5 exponent, 10 mantissa bits.
    /// ε = 2⁻¹⁰ ≈ 9.77e-4, max finite 65504, smallest subnormal 2⁻²⁴.
    f16, f16_bits_to_f32, f32_to_f16_bits, f64_to_f16_bits,
    exp_mask: 0x7c00,
    zero: 0x0000, one: 0x3c00, two: 0x4000,
    epsilon: 0x1400, // 2^-10
    pi: 0x4248,      // 3.140625
    precision: Precision::Half
);

define_half!(
    /// bfloat16: 1 sign, 8 exponent, 7 mantissa bits — the top half of an
    /// `f32`. ε = 2⁻⁷ ≈ 7.81e-3 with the full f32 exponent range.
    bf16, bf16_bits_to_f32, f32_to_bf16_bits, f64_to_bf16_bits,
    exp_mask: 0x7f80,
    zero: 0x0000, one: 0x3f80, two: 0x4000,
    epsilon: 0x3c00, // 2^-7
    pi: 0x4049,      // 3.140625
    precision: Precision::BFloat16
);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;

    #[test]
    fn f16_known_bit_patterns() {
        assert_eq!(f16::from_f32(0.0).to_bits(), 0x0000);
        assert_eq!(f16::from_f32(-0.0).to_bits(), 0x8000);
        assert_eq!(f16::from_f32(1.0).to_bits(), 0x3c00);
        assert_eq!(f16::from_f32(2.0).to_bits(), 0x4000);
        assert_eq!(f16::from_f32(0.5).to_bits(), 0x3800);
        assert_eq!(f16::from_f32(65504.0).to_bits(), 0x7bff); // max finite
        assert_eq!(f16::from_f32(f32::INFINITY).to_bits(), 0x7c00);
        assert_eq!(f16::from_f32(-f32::INFINITY).to_bits(), 0xfc00);
        // Machine epsilon constant matches the format.
        assert_eq!(f16::EPSILON.to_f32(), 2f32.powi(-10));
        assert_eq!(bf16::EPSILON.to_f32(), 2f32.powi(-7));
    }

    #[test]
    fn f16_overflow_and_subnormals() {
        // 65520 is the halfway point between 65504 and the next binade:
        // ties-to-even rounds up to infinity (0x7bff has an odd mantissa).
        assert!(f16::from_f32(65519.0).is_finite());
        assert!(!f16::from_f32(65520.0).is_finite());
        assert!(!f16::from_f32(1e6).is_finite());
        // Smallest subnormal 2^-24; half of it ties to even (zero).
        assert_eq!(f16::from_f32(2f32.powi(-24)).to_bits(), 0x0001);
        assert_eq!(f16::from_f32(2f32.powi(-25)).to_bits(), 0x0000);
        assert_eq!(f16::from_f32(1.5 * 2f32.powi(-25)).to_bits(), 0x0001);
        // f32 subnormals flush to (signed) zero in f16.
        assert_eq!(f16::from_f32(f32::MIN_POSITIVE / 2.0).to_bits(), 0x0000);
        assert_eq!(f16::from_f32(-f32::MIN_POSITIVE / 2.0).to_bits(), 0x8000);
    }

    #[test]
    fn f16_round_to_nearest_even_ties() {
        // 1 + 2^-11 is exactly halfway between 1.0 and 1 + 2^-10.
        assert_eq!(f16::from_f32(1.0 + 2f32.powi(-11)).to_bits(), 0x3c00);
        // 1 + 2^-10 + 2^-11 is halfway between 0x3c01 and 0x3c02 → even.
        assert_eq!(f16::from_f32(1.0 + 2f32.powi(-10) + 2f32.powi(-11)).to_bits(), 0x3c02);
        // Just above the tie rounds up.
        assert_eq!(f16::from_f32(1.0 + 2f32.powi(-11) + 2f32.powi(-20)).to_bits(), 0x3c01);
    }

    #[test]
    fn bf16_known_bit_patterns() {
        assert_eq!(bf16::from_f32(1.0).to_bits(), 0x3f80);
        assert_eq!(bf16::from_f32(-2.0).to_bits(), 0xc000);
        assert_eq!(bf16::from_f32(f32::INFINITY).to_bits(), 0x7f80);
        // π rounds down (low half 0x0fdb < 0x8000).
        assert_eq!(bf16::from_f32(core::f32::consts::PI).to_bits(), 0x4049);
        // RTNE tie on the 16 dropped bits.
        assert_eq!(bf16::from_f32(f32::from_bits(0x3f80_8000)).to_bits(), 0x3f80);
        assert_eq!(bf16::from_f32(f32::from_bits(0x3f81_8000)).to_bits(), 0x3f82);
        assert_eq!(bf16::from_f32(f32::from_bits(0x3f80_8001)).to_bits(), 0x3f81);
    }

    #[test]
    fn exhaustive_widen_narrow_roundtrip() {
        // Widening then narrowing must reproduce every non-NaN pattern
        // bit-for-bit, for both formats.
        for bits in 0..=u16::MAX {
            let h = f16::from_bits(bits);
            if h.to_f32().is_nan() {
                assert!(f16::from_f32(h.to_f32()).to_f32().is_nan());
            } else {
                assert_eq!(f16::from_f32(h.to_f32()).to_bits(), bits, "f16 {bits:#06x}");
            }
            let b = bf16::from_bits(bits);
            if b.to_f32().is_nan() {
                assert!(bf16::from_f32(b.to_f32()).to_f32().is_nan());
            } else {
                assert_eq!(bf16::from_f32(b.to_f32()).to_bits(), bits, "bf16 {bits:#06x}");
            }
        }
    }

    #[test]
    fn narrowing_picks_the_nearest_representable() {
        // RTNE property check against the neighbouring representables.
        let mut rng = SplitMix64::new(42);
        for _ in 0..20_000 {
            // Positive normals: the bit pattern is monotone in the value,
            // so ±1 on the bits walks to the adjacent representables.
            let x = rng.uniform(1e-3, 60000.0) as f32;
            let h = f16::from_f32(x);
            let d = (h.to_f32() - x).abs();
            let up = f16::from_bits(h.to_bits() + 1);
            let down = f16::from_bits(h.to_bits() - 1);
            if up.is_finite() {
                assert!(d <= (up.to_f32() - x).abs(), "{x} vs {h}");
            }
            assert!(d <= (down.to_f32() - x).abs(), "{x} vs {h}");
        }
    }

    #[test]
    fn arithmetic_rounds_to_storage() {
        // 1 + ε/2 must be swallowed in both formats (storage rounding).
        let one16 = f16::ONE;
        let tiny16 = f16::from_f32(2f32.powi(-12));
        assert_eq!(one16 + tiny16, one16);
        let one_b = bf16::ONE;
        let tiny_b = bf16::from_f32(2f32.powi(-9));
        assert_eq!(one_b + tiny_b, one_b);
        // But a full ε is representable.
        assert!(one16 + f16::EPSILON > one16);
        assert!(one_b + bf16::EPSILON > one_b);
    }

    #[test]
    fn real_trait_smoke() {
        fn smoke<T: Real>() {
            assert_eq!(T::ZERO + T::ONE, T::ONE);
            assert_eq!(T::ONE + T::ONE, T::TWO);
            let (s, c) = T::PI.sin_cos();
            assert!(s.abs().to_f64() < 1e-2);
            assert!((c.to_f64() + 1.0).abs() < 1e-2);
            let x = T::from_f64(2.0);
            assert!((x.sqrt().to_f64() - core::f64::consts::SQRT_2).abs() < 1e-2);
            assert!(x.is_finite());
            assert_eq!(x.maximum(T::ONE), x);
            assert_eq!(x.minimum(T::ONE), T::ONE);
            assert_eq!((-x).abs(), x);
            assert_eq!(T::BYTES, 2);
        }
        smoke::<f16>();
        smoke::<bf16>();
        assert_eq!(f16::PRECISION, Precision::Half);
        assert_eq!(bf16::PRECISION, Precision::BFloat16);
    }

    #[test]
    fn ieee_comparison_semantics() {
        assert_eq!(f16::from_f32(0.0), f16::from_f32(-0.0));
        let nan = f16::from_f32(f32::NAN);
        assert!(nan != nan);
        assert!(f16::from_f32(1.0) < f16::from_f32(1.5));
        assert_eq!(bf16::from_f32(0.0), bf16::from_f32(-0.0));
    }

    #[test]
    fn bit_eq_vs_value_eq() {
        // The two relations disagree exactly on zeros and NaNs.
        let pz = f16::from_f32(0.0);
        let nz = f16::from_f32(-0.0);
        assert_eq!(pz, nz);
        assert!(!pz.bit_eq(nz));
        let nan = f16::from_f32(f32::NAN);
        assert!(nan != nan);
        assert!(nan.bit_eq(nan));
        // On ordinary finite values they agree.
        let a = bf16::from_f32(1.5);
        assert!(a.bit_eq(bf16::from_f32(1.5)));
        assert!(!bf16::from_f32(0.0).bit_eq(bf16::from_f32(-0.0)));
        assert_eq!(bf16::from_f32(0.0), bf16::from_f32(-0.0));
    }

    #[test]
    fn f64_narrowing_rounds_once() {
        // Inputs where f64 → f32 → 16-bit provably differs from the
        // direct conversion: the f32 step lands exactly on (or below) a
        // 16-bit tie point that the original value sits strictly above.
        let two_step_f16 = |x: f64| f32_to_f16_bits(x as f32);
        let two_step_bf16 = |x: f64| f32_to_bf16_bits(x as f32);

        // 1 + 2⁻¹¹ + 2⁻²⁶: f32 rounds to the f16 tie 1 + 2⁻¹¹, which then
        // ties-to-even down to 1.0. The value is strictly above the tie.
        let x = 1.0 + 2f64.powi(-11) + 2f64.powi(-26);
        assert_eq!(two_step_f16(x), 0x3c00);
        assert_eq!(f64_to_f16_bits(x), 0x3c01);

        // 1 + 2⁻¹¹ + 2⁻²⁴: exactly halfway between two f32s; the f32 tie
        // rounds to the even mantissa (down), hiding the f16 round-up.
        let x = 1.0 + 2f64.powi(-11) + 2f64.powi(-24);
        assert_eq!(two_step_f16(x), 0x3c00);
        assert_eq!(f64_to_f16_bits(x), 0x3c01);

        // Subnormal f16 boundary: 2⁻²⁵ + 2⁻⁶⁰ is strictly above half the
        // smallest subnormal, but f32 rounds it onto the tie (→ 0).
        let x = 2f64.powi(-25) + 2f64.powi(-60);
        assert_eq!(two_step_f16(x), 0x0000);
        assert_eq!(f64_to_f16_bits(x), 0x0001);

        // bf16: 1 + 2⁻⁸ + 2⁻³⁰ sits above the bf16 tie 1 + 2⁻⁸; the f32
        // step erases the 2⁻³⁰ and the tie rounds-to-even down.
        let x = 1.0 + 2f64.powi(-8) + 2f64.powi(-30);
        assert_eq!(two_step_bf16(x), 0x3f80);
        assert_eq!(f64_to_bf16_bits(x), 0x3f81);

        // Negative values mirror exactly.
        let x = -(1.0 + 2f64.powi(-11) + 2f64.powi(-26));
        assert_eq!(f64_to_f16_bits(x), 0xbc01);
    }

    #[test]
    fn f64_narrowing_special_values() {
        assert_eq!(f64_to_f16_bits(0.0), 0x0000);
        assert_eq!(f64_to_f16_bits(-0.0), 0x8000);
        assert_eq!(f64_to_f16_bits(f64::INFINITY), 0x7c00);
        assert_eq!(f64_to_f16_bits(f64::NEG_INFINITY), 0xfc00);
        assert_eq!(f64_to_f16_bits(1e300), 0x7c00); // overflow → inf
        assert_eq!(f64_to_f16_bits(65519.0), 0x7bff); // just below the tie
        assert_eq!(f64_to_f16_bits(65520.0), 0x7c00); // tie → inf
        assert_eq!(f64_to_f16_bits(f64::MIN_POSITIVE), 0x0000); // underflow
        assert!(f16::from_bits(f64_to_f16_bits(f64::NAN)).to_f32().is_nan());
        assert_eq!(f64_to_bf16_bits(0.0), 0x0000);
        assert_eq!(f64_to_bf16_bits(-0.0), 0x8000);
        assert_eq!(f64_to_bf16_bits(f64::INFINITY), 0x7f80);
        assert_eq!(f64_to_bf16_bits(1e300), 0x7f80);
        assert_eq!(f64_to_bf16_bits(1e6), 0x4974); // finite in bf16
        assert!(bf16::from_bits(f64_to_bf16_bits(f64::NAN)).to_f32().is_nan());
        // bf16 subnormal boundary: smallest subnormal is 2⁻¹³³.
        assert_eq!(f64_to_bf16_bits(2f64.powi(-133)), 0x0001);
        assert_eq!(f64_to_bf16_bits(2f64.powi(-134)), 0x0000); // tie → even
        assert_eq!(f64_to_bf16_bits(2f64.powi(-134) + 2f64.powi(-180)), 0x0001);
    }

    #[test]
    fn f64_narrowing_agrees_with_f32_path_on_exact_f32s() {
        // Widening f32 → f64 is exact, so the direct f64 narrowing must
        // agree bit-for-bit with the f32 entry points on such inputs —
        // this is what keeps buffer casts and `Real::from_f64` coherent.
        for bits in 0..=u16::MAX {
            let wf = f16_bits_to_f32(bits);
            if !wf.is_nan() {
                assert_eq!(f64_to_f16_bits(wf as f64), f32_to_f16_bits(wf), "f16 {bits:#06x}");
            }
            let wb = bf16_bits_to_f32(bits);
            if !wb.is_nan() {
                assert_eq!(f64_to_bf16_bits(wb as f64), f32_to_bf16_bits(wb), "bf16 {bits:#06x}");
            }
        }
        let mut rng = SplitMix64::new(7);
        for _ in 0..200_000 {
            let f = f32::from_bits(rng.next_u64() as u32);
            if f.is_nan() {
                continue;
            }
            assert_eq!(f64_to_f16_bits(f as f64), f32_to_f16_bits(f), "{f:e}");
            assert_eq!(f64_to_bf16_bits(f as f64), f32_to_bf16_bits(f), "{f:e}");
        }
    }

    #[test]
    fn f64_narrowing_picks_the_nearest_representable() {
        // RTNE property check against the neighbouring representables,
        // driven directly from f64. Log-uniform positive samples cover
        // the normal binades and the subnormal band; on positive values
        // the 16-bit pattern is monotone, so ±1 on the bits walks to the
        // adjacent representables.
        let mut rng = SplitMix64::new(11);
        for _ in 0..50_000 {
            let x = rng.uniform(1.0, 2.0) * 2f64.powf(rng.uniform(-28.0, 17.0));
            let h = f16::from_bits(f64_to_f16_bits(x));
            if h.is_finite() {
                let d = (h.to_f64() - x).abs();
                if h.to_bits() != 0 {
                    let down = f16::from_bits(h.to_bits() - 1);
                    assert!(d <= (down.to_f64() - x).abs(), "{x:e} vs {h}");
                }
                let up = f16::from_bits(h.to_bits() + 1);
                if up.is_finite() {
                    assert!(d <= (up.to_f64() - x).abs(), "{x:e} vs {h}");
                }
            }
            let y = rng.uniform(1.0, 2.0) * 2f64.powf(rng.uniform(-136.0, 129.0));
            let b = bf16::from_bits(f64_to_bf16_bits(y));
            if b.is_finite() {
                let d = (b.to_f64() - y).abs();
                if b.to_bits() != 0 {
                    let down = bf16::from_bits(b.to_bits() - 1);
                    assert!(d <= (down.to_f64() - y).abs(), "{y:e} vs {b}");
                }
                let up = bf16::from_bits(b.to_bits() + 1);
                if up.is_finite() {
                    assert!(d <= (up.to_f64() - y).abs(), "{y:e} vs {b}");
                }
            }
        }
    }

    #[test]
    fn sum_rounds_per_partial() {
        // 256 × (1 + small) in f16: once the accumulator reaches 2^k the
        // small parts are swallowed — sequential storage rounding.
        let xs = vec![f16::from_f32(1.0); 300];
        let s: f16 = xs.iter().copied().sum();
        // 300 is not representable in f16 above 256 at unit spacing? It
        // is (spacing at 300 is 0.25) — the sum must land exactly.
        assert_eq!(s.to_f32(), 300.0);
        // 32 × 4096 = 131072 exceeds the f16 range: overflows to inf.
        let big: f16 = vec![f16::from_f32(4096.0); 32].into_iter().sum();
        assert!(!big.is_finite());
    }
}
