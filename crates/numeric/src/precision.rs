//! Runtime precision tags for the dynamic mixed-precision framework.
//!
//! The paper's framework (Section 3.2) assigns each of the five matvec
//! phases a compute precision chosen at runtime from {single, double} via a
//! configuration string such as `dssdd`. [`Precision`] is that per-phase
//! tag; parsing/formatting of whole five-phase strings lives in
//! `fftmatvec-core::precision`.

use core::fmt;

/// One of the two compute precisions used by the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Precision {
    /// IEEE-754 binary32 (FP32), ε ≈ 1.19e-7.
    Single,
    /// IEEE-754 binary64 (FP64), ε ≈ 2.22e-16.
    Double,
}

impl Precision {
    /// Machine epsilon of this precision, as an `f64`.
    #[inline]
    pub fn epsilon(self) -> f64 {
        match self {
            Precision::Single => f32::EPSILON as f64,
            Precision::Double => f64::EPSILON,
        }
    }

    /// Bytes per *real* element in this precision.
    #[inline]
    pub fn real_bytes(self) -> usize {
        match self {
            Precision::Single => 4,
            Precision::Double => 8,
        }
    }

    /// Bytes per *complex* element in this precision.
    #[inline]
    pub fn complex_bytes(self) -> usize {
        2 * self.real_bytes()
    }

    /// The single-character code used by the artifact's `-prec` flag.
    #[inline]
    pub fn code(self) -> char {
        match self {
            Precision::Single => 's',
            Precision::Double => 'd',
        }
    }

    /// Parse the artifact's single-character code (`s` or `d`).
    pub fn from_code(c: char) -> Option<Self> {
        match c.to_ascii_lowercase() {
            's' => Some(Precision::Single),
            'd' => Some(Precision::Double),
            _ => None,
        }
    }

    /// The lower of two precisions. The paper performs memory operations
    /// "in the lowest possible precision among the compute precisions of
    /// adjacent phases" (Section 3.2); this is that lattice meet.
    #[inline]
    pub fn min(self, other: Self) -> Self {
        if self == Precision::Single || other == Precision::Single {
            Precision::Single
        } else {
            Precision::Double
        }
    }

    /// The higher of two precisions.
    #[inline]
    pub fn max(self, other: Self) -> Self {
        if self == Precision::Double || other == Precision::Double {
            Precision::Double
        } else {
            Precision::Single
        }
    }

    /// Both precisions, lowest first.
    pub const ALL: [Precision; 2] = [Precision::Single, Precision::Double];
}

impl fmt::Display for Precision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Precision::Single => write!(f, "single"),
            Precision::Double => write!(f, "double"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_roundtrip() {
        for p in Precision::ALL {
            assert_eq!(Precision::from_code(p.code()), Some(p));
        }
        assert_eq!(Precision::from_code('S'), Some(Precision::Single));
        assert_eq!(Precision::from_code('x'), None);
    }

    #[test]
    fn lattice_ops() {
        use Precision::*;
        assert_eq!(Single.min(Double), Single);
        assert_eq!(Double.min(Double), Double);
        assert_eq!(Single.max(Double), Double);
        assert_eq!(Single.max(Single), Single);
    }

    #[test]
    fn byte_sizes() {
        assert_eq!(Precision::Single.real_bytes(), 4);
        assert_eq!(Precision::Double.complex_bytes(), 16);
    }

    #[test]
    fn epsilons() {
        assert!(Precision::Single.epsilon() > Precision::Double.epsilon());
    }
}
