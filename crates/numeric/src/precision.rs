//! Runtime precision tags for the dynamic mixed-precision framework.
//!
//! The paper's framework (Section 3.2) assigns each of the five matvec
//! phases a compute precision chosen at runtime via a configuration
//! string such as `dssdd`. The paper restricts the lattice to
//! {single, double}; this workspace opens it to four tiers by adding the
//! software-emulated 16-bit formats (`fftmatvec_numeric::half`):
//!
//! | tier | code | format | ε | bytes |
//! |------|------|--------|---|-------|
//! | [`Precision::Half`] | `h` | IEEE binary16 | 2⁻¹⁰ ≈ 9.8e-4 | 2 |
//! | [`Precision::BFloat16`] | `b` | bfloat16 | 2⁻⁷ ≈ 7.8e-3 | 2 |
//! | [`Precision::Single`] | `s` | IEEE binary32 | 2⁻²³ ≈ 1.2e-7 | 4 |
//! | [`Precision::Double`] | `d` | IEEE binary64 | 2⁻⁵² ≈ 2.2e-16 | 8 |
//!
//! [`Precision`] is the per-phase tag; parsing/formatting of whole
//! five-phase strings lives in `fftmatvec-core::precision`.
//!
//! The lattice order is `Half < BFloat16 < Single < Double`. The two
//! 16-bit tiers are *incomparable in accuracy* (bf16 trades significand
//! bits for the f32 exponent range), so their relative order is a
//! convention; `Half` sits at the bottom so the meet of the two 2-byte
//! tiers is deterministic. Use [`Precision::epsilon`] — not the lattice
//! order — for error analysis: ε(Half) < ε(BFloat16).

use core::fmt;

/// One of the four compute precisions of the extended lattice.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Precision {
    /// IEEE-754 binary16 (FP16), ε = 2⁻¹⁰ ≈ 9.77e-4. Software-emulated
    /// (f32 compute, 16-bit storage rounding) pending a GPU backend.
    Half,
    /// bfloat16 (BF16), ε = 2⁻⁷ ≈ 7.81e-3. Software-emulated.
    BFloat16,
    /// IEEE-754 binary32 (FP32), ε ≈ 1.19e-7.
    Single,
    /// IEEE-754 binary64 (FP64), ε ≈ 2.22e-16.
    Double,
}

impl Precision {
    /// Machine epsilon of this precision, as an `f64`.
    #[inline]
    pub fn epsilon(self) -> f64 {
        match self {
            Precision::Half => 2f64.powi(-10),
            Precision::BFloat16 => 2f64.powi(-7),
            Precision::Single => f32::EPSILON as f64,
            Precision::Double => f64::EPSILON,
        }
    }

    /// Bytes per *real* element in this precision.
    #[inline]
    pub fn real_bytes(self) -> usize {
        match self {
            Precision::Half | Precision::BFloat16 => 2,
            Precision::Single => 4,
            Precision::Double => 8,
        }
    }

    /// Bytes per *complex* element in this precision.
    #[inline]
    pub fn complex_bytes(self) -> usize {
        2 * self.real_bytes()
    }

    /// The single-character code used by the artifact's `-prec` flag
    /// (`h`/`b` are this workspace's extension codes).
    #[inline]
    pub fn code(self) -> char {
        match self {
            Precision::Half => 'h',
            Precision::BFloat16 => 'b',
            Precision::Single => 's',
            Precision::Double => 'd',
        }
    }

    /// Parse a single-character code (`h`, `b`, `s`, or `d`).
    pub fn from_code(c: char) -> Option<Self> {
        match c.to_ascii_lowercase() {
            'h' => Some(Precision::Half),
            'b' => Some(Precision::BFloat16),
            's' => Some(Precision::Single),
            'd' => Some(Precision::Double),
            _ => None,
        }
    }

    /// The lower of two precisions. The paper performs memory operations
    /// "in the lowest possible precision among the compute precisions of
    /// adjacent phases" (Section 3.2); this is that lattice meet.
    #[inline]
    pub fn min(self, other: Self) -> Self {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// The higher of two precisions (lattice join).
    #[inline]
    pub fn max(self, other: Self) -> Self {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Round an `f64` value through this tier's storage format and widen
    /// it back — the "route through precision p" primitive the fused
    /// memory-op kernels use. Identity for `Double`. A **single** RTNE
    /// rounding for every tier (the 16-bit paths round directly from the
    /// f64 significand, never through f32), so this agrees bit-for-bit
    /// with `Real::from_f64` in the matching format.
    #[inline]
    pub fn round_f64(self, x: f64) -> f64 {
        match self {
            Precision::Half => crate::half::f16_bits_to_f32(crate::half::f64_to_f16_bits(x)) as f64,
            Precision::BFloat16 => {
                crate::half::bf16_bits_to_f32(crate::half::f64_to_bf16_bits(x)) as f64
            }
            Precision::Single => x as f32 as f64,
            Precision::Double => x,
        }
    }

    /// Is every value of `self` exactly representable in `target`?
    /// Up-casts along this relation are lossless, so a
    /// `self → target → self` roundtrip is the identity. Note the two
    /// 16-bit tiers do **not** widen into each other: bf16 → f16 loses
    /// range, f16 → bf16 loses significand bits.
    #[inline]
    pub fn widens_exactly_to(self, target: Self) -> bool {
        use Precision::*;
        self == target || matches!((self, target), (_, Double) | (Half | BFloat16, Single))
    }

    /// All four precisions, lattice-lowest first.
    pub const ALL: [Precision; 4] =
        [Precision::Half, Precision::BFloat16, Precision::Single, Precision::Double];

    /// The paper's original two-tier set, lowest first.
    pub const PAPER: [Precision; 2] = [Precision::Single, Precision::Double];
}

impl fmt::Display for Precision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Precision::Half => write!(f, "half"),
            Precision::BFloat16 => write!(f, "bfloat16"),
            Precision::Single => write!(f, "single"),
            Precision::Double => write!(f, "double"),
        }
    }
}

/// Dispatch a runtime [`Precision`] to a generic call: binds the concrete
/// scalar type (`f16`/`bf16`/`f32`/`f64`) to the given type identifier
/// and evaluates the expression once per lattice tier.
///
/// ```
/// use fftmatvec_numeric::{with_real, Precision, Real};
/// fn zeros(p: Precision, n: usize) -> Vec<f64> {
///     with_real!(p, T => vec![T::ZERO; n].into_iter().map(|x| x.to_f64()).collect())
/// }
/// assert_eq!(zeros(Precision::Half, 2), vec![0.0, 0.0]);
/// ```
#[macro_export]
macro_rules! with_real {
    ($p:expr, $T:ident => $body:expr) => {
        match $p {
            $crate::Precision::Half => {
                type $T = $crate::f16;
                $body
            }
            $crate::Precision::BFloat16 => {
                type $T = $crate::bf16;
                $body
            }
            $crate::Precision::Single => {
                type $T = f32;
                $body
            }
            $crate::Precision::Double => {
                type $T = f64;
                $body
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_roundtrip() {
        for p in Precision::ALL {
            assert_eq!(Precision::from_code(p.code()), Some(p));
        }
        assert_eq!(Precision::from_code('S'), Some(Precision::Single));
        assert_eq!(Precision::from_code('H'), Some(Precision::Half));
        assert_eq!(Precision::from_code('B'), Some(Precision::BFloat16));
        assert_eq!(Precision::from_code('x'), None);
    }

    #[test]
    fn lattice_ops() {
        use Precision::*;
        assert_eq!(Single.min(Double), Single);
        assert_eq!(Double.min(Double), Double);
        assert_eq!(Single.max(Double), Double);
        assert_eq!(Single.max(Single), Single);
        assert_eq!(Half.min(BFloat16), Half);
        assert_eq!(Half.max(Single), Single);
        assert_eq!(BFloat16.min(Double), BFloat16);
        // Lattice order bottoms out at Half.
        for p in Precision::ALL {
            assert_eq!(Half.min(p), Half);
            assert_eq!(Double.max(p), Double);
        }
    }

    #[test]
    fn byte_sizes() {
        assert_eq!(Precision::Half.real_bytes(), 2);
        assert_eq!(Precision::BFloat16.real_bytes(), 2);
        assert_eq!(Precision::Single.real_bytes(), 4);
        assert_eq!(Precision::Double.complex_bytes(), 16);
        assert_eq!(Precision::Half.complex_bytes(), 4);
    }

    #[test]
    fn epsilons() {
        // Accuracy order: d ≪ s ≪ h < b. Note it differs from the lattice
        // order between the 16-bit tiers.
        assert!(Precision::Double.epsilon() < Precision::Single.epsilon());
        assert!(Precision::Single.epsilon() < Precision::Half.epsilon());
        assert!(Precision::Half.epsilon() < Precision::BFloat16.epsilon());
        assert_eq!(Precision::Half.epsilon(), 0.0009765625);
        assert_eq!(Precision::BFloat16.epsilon(), 0.0078125);
    }

    #[test]
    fn widening_relation() {
        use Precision::*;
        for p in Precision::ALL {
            assert!(p.widens_exactly_to(p));
            assert!(p.widens_exactly_to(Double));
        }
        assert!(Half.widens_exactly_to(Single));
        assert!(BFloat16.widens_exactly_to(Single));
        assert!(!Half.widens_exactly_to(BFloat16));
        assert!(!BFloat16.widens_exactly_to(Half));
        assert!(!Single.widens_exactly_to(Half));
        assert!(!Double.widens_exactly_to(Single));
    }

    #[test]
    fn round_f64_through_tiers() {
        let x = 1.0 + 2f64.powi(-20); // exact in f32/f64, not in 16 bits
        assert_eq!(Precision::Double.round_f64(x), x);
        assert_eq!(Precision::Single.round_f64(x), x);
        assert_eq!(Precision::Half.round_f64(x), 1.0);
        assert_eq!(Precision::BFloat16.round_f64(x), 1.0);
        // Large magnitudes overflow the f16 range but not bf16.
        assert!(Precision::Half.round_f64(1e6).is_infinite());
        assert!(Precision::BFloat16.round_f64(1e6).is_finite());
    }

    #[test]
    fn round_f64_rounds_once() {
        use crate::real::Real;
        // A value strictly above the f16 tie 1 + 2⁻¹¹; the old two-step
        // route (f64 → f32 → f16) collapsed it onto the tie and rounded
        // down to 1.0. One direct rounding goes up.
        let x = 1.0 + 2f64.powi(-11) + 2f64.powi(-26);
        assert_eq!(Precision::Half.round_f64(x), 1.0 + 2f64.powi(-10));
        let y = 1.0 + 2f64.powi(-8) + 2f64.powi(-30);
        assert_eq!(Precision::BFloat16.round_f64(y), 1.0 + 2f64.powi(-7));
        // And it agrees with `Real::from_f64` per tier.
        for v in [x, y, 0.1, -3.7e-5, 65520.0] {
            assert_eq!(Precision::Half.round_f64(v), crate::half::f16::from_f64(v).to_f64());
            assert_eq!(Precision::BFloat16.round_f64(v), crate::half::bf16::from_f64(v).to_f64());
        }
    }

    #[test]
    fn with_real_dispatch() {
        use crate::real::Real;
        fn eps(p: Precision) -> f64 {
            with_real!(p, T => <T as Real>::EPSILON.to_f64())
        }
        for p in Precision::ALL {
            assert_eq!(eps(p), p.epsilon(), "{p}");
        }
    }
}
