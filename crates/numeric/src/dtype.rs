//! Runtime datatype tags for the four BLAS element types.
//!
//! Figure 1 of the paper benchmarks the SBGEMV kernels for the rocBLAS
//! quartet — real single (`s`), real double (`d`), complex single (`c`),
//! complex double (`z`). [`DType`] carries the per-type facts the GPU cost
//! model needs: element size and how many elements fit in one 16-byte
//! vectorized load (`float4`/`double2`, Section 3.1.1).

use core::fmt;

use crate::precision::Precision;

/// The four rocBLAS element datatypes, plus the software-emulated 16-bit
/// tiers (no rocBLAS counterpart exists for the complex 16-bit types —
/// exactly the library gap the paper cites for excluding half precision).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DType {
    /// `half` — rocBLAS `h` (software-emulated here).
    RealF16,
    /// `bfloat16` — rocBLAS `b` prefix by convention (software-emulated).
    RealBF16,
    /// `float` — rocBLAS `s`.
    RealF32,
    /// `double` — rocBLAS `d`.
    RealF64,
    /// Interleaved complex over `half` — synthetic prefix `k`.
    ComplexF16,
    /// Interleaved complex over `bfloat16` — synthetic prefix `y`.
    ComplexBF16,
    /// `hipFloatComplex` — rocBLAS `c`.
    ComplexF32,
    /// `hipDoubleComplex` — rocBLAS `z`.
    ComplexF64,
}

impl DType {
    /// Size of one element in bytes.
    #[inline]
    pub fn bytes(self) -> usize {
        match self {
            DType::RealF16 | DType::RealBF16 => 2,
            DType::RealF32 | DType::ComplexF16 | DType::ComplexBF16 => 4,
            DType::RealF64 | DType::ComplexF32 => 8,
            DType::ComplexF64 => 16,
        }
    }

    /// Elements per 16-byte vectorized load — the paper: "In a single
    /// instruction, a maximum of 16 bytes can be read or written by a
    /// thread" (Section 3.1.1).
    #[inline]
    pub fn vector_lanes(self) -> usize {
        16 / self.bytes()
    }

    /// Is this a complex type (frequency-domain data)?
    #[inline]
    pub fn is_complex(self) -> bool {
        matches!(
            self,
            DType::ComplexF16 | DType::ComplexBF16 | DType::ComplexF32 | DType::ComplexF64
        )
    }

    /// The underlying real precision.
    #[inline]
    pub fn precision(self) -> Precision {
        match self {
            DType::RealF16 | DType::ComplexF16 => Precision::Half,
            DType::RealBF16 | DType::ComplexBF16 => Precision::BFloat16,
            DType::RealF32 | DType::ComplexF32 => Precision::Single,
            DType::RealF64 | DType::ComplexF64 => Precision::Double,
        }
    }

    /// Flops per multiply-accumulate on one element pair
    /// (complex MAC = 4 mul + 4 add = 8 flops; real MAC = 2).
    #[inline]
    pub fn flops_per_mac(self) -> usize {
        if self.is_complex() {
            8
        } else {
            2
        }
    }

    /// The complex counterpart with the same precision.
    #[inline]
    pub fn to_complex(self) -> DType {
        match self.precision() {
            Precision::Half => DType::ComplexF16,
            Precision::BFloat16 => DType::ComplexBF16,
            Precision::Single => DType::ComplexF32,
            Precision::Double => DType::ComplexF64,
        }
    }

    /// The real counterpart with the same precision.
    #[inline]
    pub fn to_real(self) -> DType {
        match self.precision() {
            Precision::Half => DType::RealF16,
            Precision::BFloat16 => DType::RealBF16,
            Precision::Single => DType::RealF32,
            Precision::Double => DType::RealF64,
        }
    }

    /// rocBLAS function-prefix letter (`s`/`d`/`c`/`z`; `h`/`b`/`k`/`y`
    /// are this workspace's extension codes for the 16-bit tiers).
    #[inline]
    pub fn blas_prefix(self) -> char {
        match self {
            DType::RealF16 => 'h',
            DType::RealBF16 => 'b',
            DType::RealF32 => 's',
            DType::RealF64 => 'd',
            DType::ComplexF16 => 'k',
            DType::ComplexBF16 => 'y',
            DType::ComplexF32 => 'c',
            DType::ComplexF64 => 'z',
        }
    }

    /// The rocBLAS quartet in Figure-1 order (the set the paper's SBGEMV
    /// benchmark covers).
    pub const ALL: [DType; 4] =
        [DType::RealF32, DType::RealF64, DType::ComplexF32, DType::ComplexF64];

    /// Every datatype including the software-emulated 16-bit tiers.
    pub const ALL_WITH_HALF: [DType; 8] = [
        DType::RealF16,
        DType::RealBF16,
        DType::RealF32,
        DType::RealF64,
        DType::ComplexF16,
        DType::ComplexBF16,
        DType::ComplexF32,
        DType::ComplexF64,
    ];
}

impl fmt::Display for DType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DType::RealF16 => "Real Half",
            DType::RealBF16 => "Real BFloat16",
            DType::RealF32 => "Real Single",
            DType::RealF64 => "Real Double",
            DType::ComplexF16 => "Complex Half",
            DType::ComplexBF16 => "Complex BFloat16",
            DType::ComplexF32 => "Complex Single",
            DType::ComplexF64 => "Complex Double",
        };
        write!(f, "{s}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_and_lanes() {
        assert_eq!(DType::RealF32.bytes(), 4);
        assert_eq!(DType::RealF32.vector_lanes(), 4); // float4
        assert_eq!(DType::RealF64.vector_lanes(), 2); // double2
        assert_eq!(DType::ComplexF32.vector_lanes(), 2);
        assert_eq!(DType::ComplexF64.vector_lanes(), 1);
    }

    #[test]
    fn conversions() {
        assert_eq!(DType::RealF32.to_complex(), DType::ComplexF32);
        assert_eq!(DType::ComplexF64.to_real(), DType::RealF64);
        assert_eq!(DType::ComplexF64.precision(), Precision::Double);
    }

    #[test]
    fn blas_prefixes() {
        let codes: Vec<char> = DType::ALL.iter().map(|d| d.blas_prefix()).collect();
        assert_eq!(codes, vec!['s', 'd', 'c', 'z']);
    }

    #[test]
    fn flop_counts() {
        assert_eq!(DType::RealF64.flops_per_mac(), 2);
        assert_eq!(DType::ComplexF32.flops_per_mac(), 8);
    }

    #[test]
    fn half_tier_dtypes() {
        assert_eq!(DType::RealF16.bytes(), 2);
        assert_eq!(DType::RealF16.vector_lanes(), 8); // half8 per 16-byte load
        assert_eq!(DType::ComplexBF16.bytes(), 4);
        assert_eq!(DType::ComplexBF16.vector_lanes(), 4);
        assert_eq!(DType::RealF16.to_complex(), DType::ComplexF16);
        assert_eq!(DType::ComplexBF16.to_real(), DType::RealBF16);
        assert_eq!(DType::ComplexF16.precision(), Precision::Half);
        assert_eq!(DType::RealBF16.precision(), Precision::BFloat16);
        assert!(DType::ComplexF16.is_complex() && !DType::RealBF16.is_complex());
        let codes: Vec<char> = DType::ALL_WITH_HALF.iter().map(|d| d.blas_prefix()).collect();
        assert_eq!(codes, vec!['h', 'b', 's', 'd', 'k', 'y', 'c', 'z']);
    }
}
