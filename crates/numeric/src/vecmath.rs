//! Small dense vector kernels shared across the workspace.
//!
//! These are the level-1 BLAS pieces the pipeline and the inverse-problem
//! layer need: dot products, norms, axpy, and the relative-ℓ2 error metric
//! that every experiment in the paper reports
//! (`‖δv‖/‖v‖`, Section 3.2.1).

use crate::complex::Complex;
use crate::real::Real;
use crate::scalar::Scalar;

/// Euclidean dot product `aᵀb` (no conjugation).
pub fn dot<S: Scalar>(a: &[S], b: &[S]) -> S {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    a.iter().zip(b).fold(S::zero(), |acc, (&x, &y)| x.mul_add(y, acc))
}

/// Hermitian inner product `aᴴb` (conjugate-linear in `a`).
pub fn dotc<S: Scalar>(a: &[S], b: &[S]) -> S {
    assert_eq!(a.len(), b.len(), "dotc length mismatch");
    a.iter().zip(b).fold(S::zero(), |acc, (&x, &y)| x.conj().mul_add(y, acc))
}

/// Squared Euclidean norm `‖a‖²`.
pub fn norm_sqr<S: Scalar>(a: &[S]) -> S::Real {
    a.iter().fold(<S::Real as Real>::ZERO, |acc, &x| acc + x.abs_sqr())
}

/// Euclidean norm `‖a‖`.
pub fn nrm2<S: Scalar>(a: &[S]) -> S::Real {
    norm_sqr(a).sqrt()
}

/// `y ← αx + y`.
pub fn axpy<S: Scalar>(alpha: S, x: &[S], y: &mut [S]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi = alpha.mul_add(xi, *yi);
    }
}

/// `y ← αy`.
pub fn scal<S: Scalar>(alpha: S, y: &mut [S]) {
    for yi in y.iter_mut() {
        *yi = alpha * *yi;
    }
}

/// Relative ℓ2 error `‖a − b‖ / ‖b‖` with `b` the reference.
/// Returns the absolute norm of `a − b` when `b` is exactly zero.
pub fn rel_l2_error(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "rel_l2_error length mismatch");
    let mut num = 0.0f64;
    let mut den = 0.0f64;
    for (&x, &y) in a.iter().zip(b) {
        let d = x - y;
        num += d * d;
        den += y * y;
    }
    if den == 0.0 {
        num.sqrt()
    } else {
        (num / den).sqrt()
    }
}

/// Relative ℓ2 error for complex data.
pub fn rel_l2_error_c(a: &[Complex<f64>], b: &[Complex<f64>]) -> f64 {
    assert_eq!(a.len(), b.len(), "rel_l2_error_c length mismatch");
    let mut num = 0.0f64;
    let mut den = 0.0f64;
    for (&x, &y) in a.iter().zip(b) {
        num += (x - y).norm_sqr();
        den += y.norm_sqr();
    }
    if den == 0.0 {
        num.sqrt()
    } else {
        (num / den).sqrt()
    }
}

/// Maximum absolute difference (ℓ∞ error).
pub fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(&x, &y)| (x - y).abs()).fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_real() {
        assert_eq!(dot(&[1.0f64, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    fn dotc_conjugates_left() {
        let a = [Complex::<f64>::new(0.0, 1.0)];
        let b = [Complex::<f64>::new(0.0, 1.0)];
        // conj(i)·i = -i·i = 1
        assert_eq!(dotc(&a, &b), Complex::one());
        // plain dot: i·i = -1
        assert_eq!(dot(&a, &b), -Complex::one());
    }

    #[test]
    fn norms() {
        assert_eq!(nrm2(&[3.0f64, 4.0]), 5.0);
        let v = [Complex::<f32>::new(3.0, 4.0)];
        assert_eq!(nrm2(&v), 5.0f32);
        assert_eq!(norm_sqr(&v), 25.0f32);
    }

    #[test]
    fn axpy_and_scal() {
        let x = [1.0f64, 2.0];
        let mut y = [10.0f64, 20.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0]);
        scal(0.5, &mut y);
        assert_eq!(y, [6.0, 12.0]);
    }

    #[test]
    fn relative_error_metric() {
        let b = [1.0f64, 0.0, 0.0];
        let a = [1.0 + 1e-8, 0.0, 0.0];
        let e = rel_l2_error(&a, &b);
        assert!((e - 1e-8).abs() < 1e-15);
        // Zero reference falls back to absolute.
        assert_eq!(rel_l2_error(&[0.5, 0.0], &[0.0, 0.0]), 0.5);
        // Identical vectors → zero error.
        assert_eq!(rel_l2_error(&b, &b), 0.0);
    }

    #[test]
    fn complex_relative_error() {
        let b = [Complex::new(1.0, 1.0)];
        let a = [Complex::new(1.0, 1.0 + 2e-7)];
        let e = rel_l2_error_c(&a, &b);
        assert!(e > 1e-7 && e < 2e-7);
    }

    #[test]
    fn linf() {
        assert_eq!(max_abs_diff(&[1.0, 5.0], &[1.5, 4.0]), 1.0);
    }
}
