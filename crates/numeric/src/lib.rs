//! Foundational numerics for the `fftmatvec` workspace.
//!
//! This crate provides the scalar abstractions everything else is built on:
//!
//! * [`Real`] — a trait abstracting over `f64`/`f32` and the
//!   software-emulated 16-bit tiers [`struct@f16`]/[`struct@bf16`] ([`half`]), so that
//!   the FFT, BLAS, and pipeline kernels are written once and
//!   instantiated per precision, mirroring the templated kernels of the
//!   paper's CUDA/HIP source.
//! * [`Complex`] — a `#[repr(C)]` complex number generic over [`Real`].
//! * [`Scalar`] — unifies real and complex element types for the BLAS
//!   kernels (rocBLAS exposes `s`/`d`/`c`/`z` variants; we expose one
//!   generic kernel over `Scalar`).
//! * [`Precision`] / [`DType`] — runtime tags for the dynamic
//!   mixed-precision framework (Section 3.2 of the paper).
//! * [`RealBuffer`] / [`ComplexBuffer`] — dynamically typed vectors that
//!   hold data in either precision and implement the *cast kernels* that
//!   the mixed-precision pipeline fuses with neighbouring memory ops.
//! * [`rng`] — deterministic RNG, including the paper's mantissa-stuffing
//!   trick (Section 4.2.1) that guarantees double→single casts lose bits.

pub mod buffer;
pub mod complex;
pub mod dtype;
pub mod half;
pub mod ndindex;
pub mod precision;
pub mod real;
pub mod rng;
pub mod scalar;
pub mod simd;
pub mod vecmath;

pub use buffer::{ComplexBuffer, RealBuffer};
pub use complex::Complex;
pub use dtype::DType;
pub use half::{bf16, f16};
pub use precision::Precision;
pub use real::Real;
pub use rng::SplitMix64;
pub use scalar::Scalar;
pub use simd::SimdLevel;

/// Complex number over `f32` (the `c` datatype in BLAS naming).
pub type C32 = Complex<f32>;
/// Complex number over `f64` (the `z` datatype in BLAS naming).
pub type C64 = Complex<f64>;
/// Complex number over software-emulated IEEE binary16.
pub type C16 = Complex<f16>;
/// Complex number over software-emulated bfloat16.
pub type CB16 = Complex<bf16>;
