//! Portable scalar reference kernels: the semantics every vectorized
//! implementation must reproduce bit-for-bit.
//!
//! These are plain per-element loops over the scalar conversions in
//! [`crate::half`]; they are always compiled and serve three roles: the
//! fallback on hosts without a vector unit, the reference side of the
//! equivalence tests, and the baseline the SIMD benchmark gate measures
//! speedups against.

use crate::half::{
    bf16, bf16_bits_to_f32, f16, f16_bits_to_f32, f32_to_bf16_bits, f32_to_f16_bits,
};

/// Exact widening `f16 → f32`, one element at a time.
pub fn widen_f16_to_f32(src: &[f16], dst: &mut [f32]) {
    for (d, s) in dst.iter_mut().zip(src) {
        *d = f16_bits_to_f32(s.to_bits());
    }
}

/// RTNE narrowing `f32 → f16`, one element at a time.
pub fn narrow_f32_to_f16(src: &[f32], dst: &mut [f16]) {
    for (d, s) in dst.iter_mut().zip(src) {
        *d = f16::from_bits(f32_to_f16_bits(*s));
    }
}

/// Exact widening `bf16 → f32`, one element at a time.
pub fn widen_bf16_to_f32(src: &[bf16], dst: &mut [f32]) {
    for (d, s) in dst.iter_mut().zip(src) {
        *d = bf16_bits_to_f32(s.to_bits());
    }
}

/// RTNE narrowing `f32 → bf16`, one element at a time.
pub fn narrow_f32_to_bf16(src: &[f32], dst: &mut [bf16]) {
    for (d, s) in dst.iter_mut().zip(src) {
        *d = bf16::from_bits(f32_to_bf16_bits(*s));
    }
}
