//! AVX2 + FMA kernels (x86-64), bit-identical to the portable scalars.
//!
//! # Why integer SIMD instead of F16C
//!
//! The host's `vcvtps2ph`/`vcvtph2ps` disagree with the crate's scalar
//! conversion algorithms on NaNs (`f32_to_f16_bits` quiets to
//! `sign|0x7e00` dropping the payload; the widening direction preserves
//! payloads *without* quieting signaling NaNs — hardware does neither
//! exactly). The kernels here instead replicate the scalar bit
//! algorithms with integer SIMD: branches become compare masks and
//! blends, the variable subnormal shifts become `vpsrlv`/`vpsllv`, and
//! the result is equal for **all** 2³² inputs, which the equivalence
//! suite checks exhaustively over the 2¹⁶ widening patterns and densely
//! over rounding boundaries for the narrowing direction.
//!
//! # Why lane-parallel arithmetic is bit-identical
//!
//! IEEE-754 `f32`/`f64` add/mul/FMA are deterministic functions of their
//! operands, and scalar Rust `mul_add` is the correctly-rounded fused
//! operation — exactly what `vfmadd` computes per lane. As long as a
//! vector kernel evaluates the *same expression tree per element* as the
//! scalar code (no reassociation, same fused/unfused mix), running eight
//! elements per instruction cannot change a single bit. The complex
//! helpers at the bottom encode the exact operation mix of
//! [`crate::complex::Complex`]'s `Mul`/`mul_add`.
//!
//! # Safety
//!
//! Every function here is `unsafe` with one uniform contract: the caller
//! must ensure the host supports AVX2 and FMA (the dispatcher in
//! [`super`] guarantees this via `level_supported`). Slice kernels have
//! no alignment requirements (unaligned loads/stores throughout).
#![allow(clippy::missing_safety_doc)]

use core::arch::x86_64::*;

use crate::half::{bf16, f16};

/// f32 lanes per 256-bit vector.
pub const F32_LANES: usize = 8;
/// f64 lanes per 256-bit vector.
pub const F64_LANES: usize = 4;

// ---------------------------------------------------------------------------
// f16 ↔ f32
// ---------------------------------------------------------------------------

/// Narrow 8 f32 lanes to f16 bit patterns, left as 8 u16 values in i32
/// lanes (callers pack or re-widen). Replicates `f32_to_f16_bits`.
#[target_feature(enable = "avx2,fma")]
unsafe fn narrow_f16_lanes(v: __m256) -> __m256i {
    let bits = _mm256_castps_si256(v);
    let sign = _mm256_and_si256(_mm256_srli_epi32::<16>(bits), _mm256_set1_epi32(0x8000));
    let exp = _mm256_and_si256(_mm256_srli_epi32::<23>(bits), _mm256_set1_epi32(0xff));
    let frac = _mm256_and_si256(bits, _mm256_set1_epi32(0x007f_ffff));
    let e = _mm256_sub_epi32(exp, _mm256_set1_epi32(127));
    let one = _mm256_set1_epi32(1);

    // Normal path: keep 10 bits, RTNE on the 13 dropped.
    let mant = _mm256_srli_epi32::<13>(frac);
    let rest = _mm256_and_si256(frac, _mm256_set1_epi32(0x1fff));
    let gt = _mm256_cmpgt_epi32(rest, _mm256_set1_epi32(0x1000));
    let tie = _mm256_cmpeq_epi32(rest, _mm256_set1_epi32(0x1000));
    let odd = _mm256_cmpeq_epi32(_mm256_and_si256(mant, one), one);
    let incr = _mm256_srli_epi32::<31>(_mm256_or_si256(gt, _mm256_and_si256(tie, odd)));
    let h_norm = _mm256_add_epi32(
        _mm256_or_si256(_mm256_slli_epi32::<10>(_mm256_add_epi32(e, _mm256_set1_epi32(15))), mant),
        incr,
    );

    // Subnormal path: shift the full 24-bit significand right by
    // (-e - 1) ∈ [14, 24], RTNE on the dropped bits. Lanes outside the
    // subnormal range compute garbage here and are blended away below
    // (variable shifts with out-of-range counts just produce 0).
    let full = _mm256_or_si256(frac, _mm256_set1_epi32(0x0080_0000));
    let shift = _mm256_sub_epi32(_mm256_set1_epi32(-1), e);
    let mant_s = _mm256_srlv_epi32(full, shift);
    let low_mask = _mm256_sub_epi32(_mm256_sllv_epi32(one, shift), one);
    let rest_s = _mm256_and_si256(full, low_mask);
    let halfway = _mm256_sllv_epi32(one, _mm256_sub_epi32(shift, one));
    let gt_s = _mm256_cmpgt_epi32(rest_s, halfway);
    let tie_s = _mm256_cmpeq_epi32(rest_s, halfway);
    let odd_s = _mm256_cmpeq_epi32(_mm256_and_si256(mant_s, one), one);
    let incr_s = _mm256_srli_epi32::<31>(_mm256_or_si256(gt_s, _mm256_and_si256(tie_s, odd_s)));
    let h_sub = _mm256_add_epi32(mant_s, incr_s);

    // Select by range, lowest priority first: zero → subnormal → normal
    // → overflow-to-inf → source inf/NaN.
    let mut h = _mm256_setzero_si256();
    let m_sub = _mm256_cmpgt_epi32(e, _mm256_set1_epi32(-26));
    h = _mm256_blendv_epi8(h, h_sub, m_sub);
    let m_norm = _mm256_cmpgt_epi32(e, _mm256_set1_epi32(-15));
    h = _mm256_blendv_epi8(h, h_norm, m_norm);
    let m_ovf = _mm256_cmpgt_epi32(e, _mm256_set1_epi32(15));
    h = _mm256_blendv_epi8(h, _mm256_set1_epi32(0x7c00), m_ovf);
    let m_naninf = _mm256_cmpeq_epi32(exp, _mm256_set1_epi32(0xff));
    let h_naninf = _mm256_blendv_epi8(
        _mm256_set1_epi32(0x7e00), // NaN: quiet, payload dropped
        _mm256_set1_epi32(0x7c00), // infinity
        _mm256_cmpeq_epi32(frac, _mm256_setzero_si256()),
    );
    h = _mm256_blendv_epi8(h, h_naninf, m_naninf);
    _mm256_or_si256(h, sign)
}

/// Widen 8 f16 bit patterns held in i32 lanes to 8 f32 lanes.
/// Replicates `f16_bits_to_f32` (NaN payloads preserved, not quieted).
#[target_feature(enable = "avx2,fma")]
unsafe fn widen_f16_lanes(h32: __m256i) -> __m256 {
    let sign = _mm256_slli_epi32::<16>(_mm256_and_si256(h32, _mm256_set1_epi32(0x8000)));
    let em = _mm256_and_si256(h32, _mm256_set1_epi32(0x7fff));
    // Shift exponent+mantissa into f32 position and rebias 15 → 127.
    let o = _mm256_add_epi32(_mm256_slli_epi32::<13>(em), _mm256_set1_epi32(112 << 23));
    // Inf/NaN: rebias the exponent again, 143 → 255 (mantissa intact).
    let m_naninf = _mm256_cmpgt_epi32(em, _mm256_set1_epi32(0x7bff));
    let o = _mm256_blendv_epi8(o, _mm256_add_epi32(o, _mm256_set1_epi32(112 << 23)), m_naninf);
    // Zero/subnormal: bump the exponent to 113 and renormalize with an
    // exact float subtraction (2⁻¹⁴ magic), yielding frac·2⁻²⁴ exactly.
    let m_sub = _mm256_cmpgt_epi32(_mm256_set1_epi32(0x0400), em);
    let magic = _mm256_castsi256_ps(_mm256_set1_epi32(113 << 23));
    let o_sub = _mm256_castps_si256(_mm256_sub_ps(
        _mm256_castsi256_ps(_mm256_add_epi32(o, _mm256_set1_epi32(1 << 23))),
        magic,
    ));
    let o = _mm256_blendv_epi8(o, o_sub, m_sub);
    _mm256_castsi256_ps(_mm256_or_si256(o, sign))
}

/// Pack 8 u16 values held in i32 lanes into the low 128 bits.
#[target_feature(enable = "avx2,fma")]
unsafe fn pack_u16(h: __m256i) -> __m128i {
    let packed = _mm256_packus_epi32(h, h);
    _mm256_castsi256_si128(_mm256_permute4x64_epi64::<0b11_01_10_00>(packed))
}

/// Narrow 8 f32s to 8 f16 bit patterns (low 128 bits of the result).
#[target_feature(enable = "avx2,fma")]
pub unsafe fn narrow8_f16(v: __m256) -> __m128i {
    pack_u16(narrow_f16_lanes(v))
}

/// Widen 8 f16 bit patterns (low 128 bits) to 8 f32s.
#[target_feature(enable = "avx2,fma")]
pub unsafe fn widen8_f16(h: __m128i) -> __m256 {
    widen_f16_lanes(_mm256_cvtepu16_epi32(h))
}

/// Round 8 f32 lanes through f16 storage (narrow + exact re-widen) —
/// the per-operation storage rounding of the emulated `f16` arithmetic,
/// fused so the u16 pack/unpack is skipped.
#[target_feature(enable = "avx2,fma")]
pub unsafe fn round8_f16(v: __m256) -> __m256 {
    widen_f16_lanes(narrow_f16_lanes(v))
}

// ---------------------------------------------------------------------------
// bf16 ↔ f32
// ---------------------------------------------------------------------------

/// Narrow 8 f32 lanes to bf16 bit patterns in i32 lanes.
/// Replicates `f32_to_bf16_bits`.
#[target_feature(enable = "avx2,fma")]
unsafe fn narrow_bf16_lanes(v: __m256) -> __m256i {
    let bits = _mm256_castps_si256(v);
    let mag = _mm256_and_si256(bits, _mm256_set1_epi32(0x7fff_ffff));
    // Round to nearest-even on the dropped 16 bits. The addition wraps
    // identically to the scalar u32 arithmetic.
    let lsb = _mm256_and_si256(_mm256_srli_epi32::<16>(bits), _mm256_set1_epi32(1));
    let rounded = _mm256_srli_epi32::<16>(_mm256_add_epi32(
        _mm256_add_epi32(bits, _mm256_set1_epi32(0x7fff)),
        lsb,
    ));
    // NaN: quiet it, keep the sign and top payload bits.
    let m_nan = _mm256_cmpgt_epi32(mag, _mm256_set1_epi32(0x7f80_0000));
    let quieted = _mm256_or_si256(_mm256_srli_epi32::<16>(bits), _mm256_set1_epi32(0x0040));
    let h = _mm256_blendv_epi8(rounded, quieted, m_nan);
    _mm256_and_si256(h, _mm256_set1_epi32(0xffff))
}

/// Narrow 8 f32s to 8 bf16 bit patterns (low 128 bits of the result).
#[target_feature(enable = "avx2,fma")]
pub unsafe fn narrow8_bf16(v: __m256) -> __m128i {
    pack_u16(narrow_bf16_lanes(v))
}

/// Widen 8 bf16 bit patterns (low 128 bits) to 8 f32s (exact).
#[target_feature(enable = "avx2,fma")]
pub unsafe fn widen8_bf16(h: __m128i) -> __m256 {
    _mm256_castsi256_ps(_mm256_slli_epi32::<16>(_mm256_cvtepu16_epi32(h)))
}

/// Round 8 f32 lanes through bf16 storage (fused narrow + widen).
#[target_feature(enable = "avx2,fma")]
pub unsafe fn round8_bf16(v: __m256) -> __m256 {
    _mm256_castsi256_ps(_mm256_slli_epi32::<16>(narrow_bf16_lanes(v)))
}

// ---------------------------------------------------------------------------
// Batched slice conversions (vector body + portable tail)
// ---------------------------------------------------------------------------

macro_rules! conversion_loop {
    ($src:ident, $dst:ident, $n:ident, $body:expr) => {{
        assert_eq!($src.len(), $dst.len());
        let $n = $src.len() / F32_LANES * F32_LANES;
        $body
    }};
}

/// Batched exact widening `f16 → f32`. Caller contract: AVX2+FMA host.
#[target_feature(enable = "avx2,fma")]
pub unsafe fn widen_f16_to_f32(src: &[f16], dst: &mut [f32]) {
    conversion_loop!(src, dst, n, {
        let sp = src.as_ptr() as *const u16;
        let dp = dst.as_mut_ptr();
        for i in (0..n).step_by(F32_LANES) {
            let h = _mm_loadu_si128(sp.add(i) as *const __m128i);
            _mm256_storeu_ps(dp.add(i), widen8_f16(h));
        }
        super::portable::widen_f16_to_f32(&src[n..], &mut dst[n..]);
    })
}

/// Batched RTNE narrowing `f32 → f16`. Caller contract: AVX2+FMA host.
#[target_feature(enable = "avx2,fma")]
pub unsafe fn narrow_f32_to_f16(src: &[f32], dst: &mut [f16]) {
    conversion_loop!(src, dst, n, {
        let sp = src.as_ptr();
        let dp = dst.as_mut_ptr() as *mut u16;
        for i in (0..n).step_by(F32_LANES) {
            let v = _mm256_loadu_ps(sp.add(i));
            _mm_storeu_si128(dp.add(i) as *mut __m128i, narrow8_f16(v));
        }
        super::portable::narrow_f32_to_f16(&src[n..], &mut dst[n..]);
    })
}

/// Batched exact widening `bf16 → f32`. Caller contract: AVX2+FMA host.
///
/// Unlike the f16 pair, the bf16 widen is a pure `bits << 16`, so a
/// 256-bit load covers 16 elements at once: interleaving each 16-bit
/// word *above* a zero word IS the shift, and two in-lane unpacks plus
/// two lane permutes produce both contiguous output registers — fewer
/// loads and loop iterations than the 8-wide `widen8_bf16` primitive
/// (which stays as the building block for the fused FFT/GEMV kernels).
#[target_feature(enable = "avx2,fma")]
pub unsafe fn widen_bf16_to_f32(src: &[bf16], dst: &mut [f32]) {
    assert_eq!(src.len(), dst.len());
    let n = src.len() / 16 * 16;
    let sp = src.as_ptr() as *const u16;
    let dp = dst.as_mut_ptr();
    let zero = _mm256_setzero_si256();
    for i in (0..n).step_by(16) {
        let v = _mm256_loadu_si256(sp.add(i) as *const __m256i);
        // In-lane interleaves: lo = elems {0..3, 8..11} << 16,
        // hi = elems {4..7, 12..15} << 16.
        let lo = _mm256_unpacklo_epi16(zero, v);
        let hi = _mm256_unpackhi_epi16(zero, v);
        let first = _mm256_permute2x128_si256::<0x20>(lo, hi);
        let second = _mm256_permute2x128_si256::<0x31>(lo, hi);
        _mm256_storeu_ps(dp.add(i), _mm256_castsi256_ps(first));
        _mm256_storeu_ps(dp.add(i + 8), _mm256_castsi256_ps(second));
    }
    super::portable::widen_bf16_to_f32(&src[n..], &mut dst[n..]);
}

/// Batched RTNE narrowing `f32 → bf16`. Caller contract: AVX2+FMA host.
#[target_feature(enable = "avx2,fma")]
pub unsafe fn narrow_f32_to_bf16(src: &[f32], dst: &mut [bf16]) {
    conversion_loop!(src, dst, n, {
        let sp = src.as_ptr();
        let dp = dst.as_mut_ptr() as *mut u16;
        for i in (0..n).step_by(F32_LANES) {
            let v = _mm256_loadu_ps(sp.add(i));
            _mm_storeu_si128(dp.add(i) as *mut __m128i, narrow8_bf16(v));
        }
        super::portable::narrow_f32_to_bf16(&src[n..], &mut dst[n..]);
    })
}

// ---------------------------------------------------------------------------
// Interleaved-complex building blocks (shared by the FFT and BLAS kernels)
// ---------------------------------------------------------------------------
//
// A `__m256` holds 4 interleaved `Complex<f32>` as [re0, im0, …, re3, im3];
// a `__m256d` holds 2 `Complex<f64>`. The helpers below encode the exact
// operation mix of `Complex::{Mul, mul_add}`, so lane-parallel complex
// arithmetic stays bit-identical to the scalar implementations.

/// Duplicate the even (real) lanes into both halves of each pair.
#[target_feature(enable = "avx2,fma")]
pub unsafe fn dup_re_ps(v: __m256) -> __m256 {
    _mm256_moveldup_ps(v)
}

/// Duplicate the odd (imaginary) lanes into both halves of each pair.
#[target_feature(enable = "avx2,fma")]
pub unsafe fn dup_im_ps(v: __m256) -> __m256 {
    _mm256_movehdup_ps(v)
}

/// Swap the two halves of each (re, im) pair.
#[target_feature(enable = "avx2,fma")]
pub unsafe fn swap_pairs_ps(v: __m256) -> __m256 {
    _mm256_permute_ps::<0b10_11_00_01>(v)
}

/// Flip the sign of the even (real) lanes — an exact bit operation.
#[target_feature(enable = "avx2,fma")]
pub unsafe fn neg_even_ps(v: __m256) -> __m256 {
    _mm256_xor_ps(v, _mm256_setr_ps(-0.0, 0.0, -0.0, 0.0, -0.0, 0.0, -0.0, 0.0))
}

/// Flip the sign of the odd (imaginary) lanes — an exact bit operation.
#[target_feature(enable = "avx2,fma")]
pub unsafe fn neg_odd_ps(v: __m256) -> __m256 {
    _mm256_xor_ps(v, _mm256_setr_ps(0.0, -0.0, 0.0, -0.0, 0.0, -0.0, 0.0, -0.0))
}

/// Element-wise complex multiply `a * w`, with `w` pre-split into
/// `w_ri = [re, im]` pairs and `w_swap = [im, re]` pairs. Replicates
/// `Complex::<f32>::mul` exactly:
/// `re = fma(a.re, w.re, -(a.im·w.im))`, `im = fma(a.re, w.im, a.im·w.re)`.
#[target_feature(enable = "avx2,fma")]
pub unsafe fn cmul_ps(a: __m256, w_ri: __m256, w_swap: __m256) -> __m256 {
    let inner = neg_even_ps(_mm256_mul_ps(dup_im_ps(a), w_swap));
    _mm256_fmadd_ps(dup_re_ps(a), w_ri, inner)
}

/// Element-wise complex FMA `a * x + p`, replicating
/// `Complex::<f32>::mul_add` exactly:
/// `re = fma(a.re, x.re, fma(-a.im, x.im, p.re))`,
/// `im = fma(a.re, x.im, fma( a.im, x.re, p.im))`.
#[target_feature(enable = "avx2,fma")]
pub unsafe fn cmuladd_ps(a: __m256, x_ri: __m256, x_swap: __m256, p: __m256) -> __m256 {
    let inner = _mm256_fmadd_ps(neg_even_ps(dup_im_ps(a)), x_swap, p);
    _mm256_fmadd_ps(dup_re_ps(a), x_ri, inner)
}

/// Duplicate the even (real) lanes of 2 packed `Complex<f64>`.
#[target_feature(enable = "avx2,fma")]
pub unsafe fn dup_re_pd(v: __m256d) -> __m256d {
    _mm256_movedup_pd(v)
}

/// Duplicate the odd (imaginary) lanes of 2 packed `Complex<f64>`.
#[target_feature(enable = "avx2,fma")]
pub unsafe fn dup_im_pd(v: __m256d) -> __m256d {
    _mm256_permute_pd::<0b1111>(v)
}

/// Swap the halves of each (re, im) `f64` pair.
#[target_feature(enable = "avx2,fma")]
pub unsafe fn swap_pairs_pd(v: __m256d) -> __m256d {
    _mm256_permute_pd::<0b0101>(v)
}

/// Flip the sign of the even (real) `f64` lanes.
#[target_feature(enable = "avx2,fma")]
pub unsafe fn neg_even_pd(v: __m256d) -> __m256d {
    _mm256_xor_pd(v, _mm256_setr_pd(-0.0, 0.0, -0.0, 0.0))
}

/// Flip the sign of the odd (imaginary) `f64` lanes.
#[target_feature(enable = "avx2,fma")]
pub unsafe fn neg_odd_pd(v: __m256d) -> __m256d {
    _mm256_xor_pd(v, _mm256_setr_pd(0.0, -0.0, 0.0, -0.0))
}

/// `f64` analogue of [`cmul_ps`].
#[target_feature(enable = "avx2,fma")]
pub unsafe fn cmul_pd(a: __m256d, w_ri: __m256d, w_swap: __m256d) -> __m256d {
    let inner = neg_even_pd(_mm256_mul_pd(dup_im_pd(a), w_swap));
    _mm256_fmadd_pd(dup_re_pd(a), w_ri, inner)
}

/// `f64` analogue of [`cmuladd_ps`].
#[target_feature(enable = "avx2,fma")]
pub unsafe fn cmuladd_pd(a: __m256d, x_ri: __m256d, x_swap: __m256d, p: __m256d) -> __m256d {
    let inner = _mm256_fmadd_pd(neg_even_pd(dup_im_pd(a)), x_swap, p);
    _mm256_fmadd_pd(dup_re_pd(a), x_ri, inner)
}
