//! Runtime-dispatched SIMD kernels behind a portable scalar fallback.
//!
//! The paper's speed claim for the 16-bit tiers rests on vector hardware:
//! half the bytes moved *and* more elements per arithmetic instruction.
//! This module is the CPU-side realization: batched `f16`/`bf16` ↔ `f32`
//! conversion kernels here, and in-register building blocks
//! ([`x86`]) that the FFT butterflies and the SBGEMV tile sweep build on.
//!
//! # Dispatch model
//!
//! The instruction-set level is detected **once**, on first use, and
//! cached ([`active_level`]). Detection picks the widest supported level
//! (AVX-512 → AVX2 → NEON → portable); the `FFTMATVEC_SIMD` environment
//! variable overrides it (`portable`, `avx2`, `avx512`, `neon`, or
//! `auto`). Malformed or unsupported values **panic** — a silently
//! ignored override would run kernels at the wrong width unnoticed, the
//! same failure mode the vendored pool guards against for
//! `RAYON_NUM_THREADS`. Tests and benchmarks can force a level
//! programmatically with [`set_active_level`].
//!
//! Two levels are currently mapped onto other implementations: `Avx512`
//! routes to the 256-bit AVX2 kernels (the 512-bit widening is a future
//! landing slot; detection and dispatch are already in place), and
//! `Neon` routes to the portable kernels on every architecture (same
//! status). Disabling the crate's `simd` feature compiles the
//! `std::arch` paths out entirely; only `portable` remains.
//!
//! # Bit-identity contract
//!
//! Every vectorized kernel produces **bit-for-bit** the same results as
//! its portable scalar counterpart, for every input including NaNs,
//! infinities, signed zeros, and subnormals. This is why the conversion
//! kernels re-implement the scalar rounding algorithms with integer SIMD
//! instead of using F16C (`vcvtps2ph` differs from
//! [`crate::half::f32_to_f16_bits`] on NaN payloads), and why the
//! arithmetic kernels never reassociate reductions: lane width, like
//! thread count, must not change results. The equivalence is pinned by
//! exhaustive and property tests (`tests/simd_equivalence.rs`) and by
//! the differential oracle running identically at any level.

pub mod portable;
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
pub mod x86;

use core::fmt;
use core::sync::atomic::{AtomicU8, Ordering};

use crate::half::{bf16, f16};

/// Instruction-set level the dispatched kernels run at.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SimdLevel {
    /// Scalar reference kernels; always available, always the fallback.
    Portable,
    /// 256-bit AVX2 + FMA (x86-64).
    Avx2,
    /// AVX-512F detected; currently executes the 256-bit AVX2 kernels.
    Avx512,
    /// aarch64 NEON detected; currently executes the portable kernels.
    Neon,
}

impl SimdLevel {
    /// Lower-case name, matching the `FFTMATVEC_SIMD` values.
    pub fn name(self) -> &'static str {
        match self {
            SimdLevel::Portable => "portable",
            SimdLevel::Avx2 => "avx2",
            SimdLevel::Avx512 => "avx512",
            SimdLevel::Neon => "neon",
        }
    }

    /// Parse a `FFTMATVEC_SIMD` value (case-insensitive). `None` for
    /// unknown strings; `auto` is handled by the caller.
    pub fn parse(s: &str) -> Option<SimdLevel> {
        match s.to_ascii_lowercase().as_str() {
            "portable" | "scalar" => Some(SimdLevel::Portable),
            "avx2" => Some(SimdLevel::Avx2),
            "avx512" => Some(SimdLevel::Avx512),
            "neon" => Some(SimdLevel::Neon),
            _ => None,
        }
    }
}

impl fmt::Display for SimdLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// 0 = not yet initialized; otherwise `encode(level)`.
static LEVEL: AtomicU8 = AtomicU8::new(0);

fn encode(level: SimdLevel) -> u8 {
    match level {
        SimdLevel::Portable => 1,
        SimdLevel::Avx2 => 2,
        SimdLevel::Avx512 => 3,
        SimdLevel::Neon => 4,
    }
}

fn decode(v: u8) -> SimdLevel {
    match v {
        1 => SimdLevel::Portable,
        2 => SimdLevel::Avx2,
        3 => SimdLevel::Avx512,
        4 => SimdLevel::Neon,
        _ => unreachable!("invalid SimdLevel encoding {v}"),
    }
}

/// Can `level` run on this host with this build configuration?
pub fn level_supported(level: SimdLevel) -> bool {
    match level {
        SimdLevel::Portable => true,
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        SimdLevel::Avx2 => {
            std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
        }
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        SimdLevel::Avx512 => {
            level_supported(SimdLevel::Avx2) && std::arch::is_x86_feature_detected!("avx512f")
        }
        #[cfg(all(feature = "simd", target_arch = "aarch64"))]
        SimdLevel::Neon => true,
        #[allow(unreachable_patterns)]
        _ => false,
    }
}

/// Widest supported level on this host (ignoring any override).
pub fn detected_level() -> SimdLevel {
    for level in [SimdLevel::Avx512, SimdLevel::Avx2, SimdLevel::Neon] {
        if level_supported(level) {
            return level;
        }
    }
    SimdLevel::Portable
}

fn init_level() -> SimdLevel {
    match std::env::var("FFTMATVEC_SIMD") {
        Ok(v) if !v.trim().is_empty() && !v.trim().eq_ignore_ascii_case("auto") => {
            let v = v.trim();
            let level = SimdLevel::parse(v).unwrap_or_else(|| {
                panic!(
                    "FFTMATVEC_SIMD={v:?} is not a valid SIMD level \
                     (expected auto, portable, avx2, avx512, or neon)"
                )
            });
            assert!(
                level_supported(level),
                "FFTMATVEC_SIMD={v:?}: level `{level}` is not supported on this host/build \
                 (detected `{}`{})",
                detected_level(),
                if cfg!(feature = "simd") { "" } else { "; built without the `simd` feature" },
            );
            level
        }
        _ => detected_level(),
    }
}

/// The dispatch level the kernels currently run at. Resolved once (env
/// override, then hardware detection) and cached.
pub fn active_level() -> SimdLevel {
    match LEVEL.load(Ordering::Relaxed) {
        0 => {
            let level = init_level();
            LEVEL.store(encode(level), Ordering::Relaxed);
            level
        }
        v => decode(v),
    }
}

/// Force the dispatch level; returns the previous one so callers can
/// restore it. Intended for the forced-fallback tests and the
/// SIMD-vs-scalar benchmark gate. Panics if `level` cannot run here.
///
/// The level is process-global: concurrent tests that flip it must
/// serialize (the equivalence suites share a mutex for this).
pub fn set_active_level(level: SimdLevel) -> SimdLevel {
    assert!(
        level_supported(level),
        "cannot force SIMD level `{level}`: not supported on this host/build"
    );
    let prev = active_level();
    LEVEL.store(encode(level), Ordering::Relaxed);
    prev
}

macro_rules! dispatch_conversion {
    ($name:ident, $with:ident, $src:ty, $dst:ty, $doc:literal) => {
        #[doc = $doc]
        ///
        /// Bit-for-bit identical to the per-element scalar conversion at
        /// every dispatch level.
        pub fn $name(src: &[$src], dst: &mut [$dst]) {
            $with(active_level(), src, dst);
        }

        /// Same kernel at an explicit [`SimdLevel`] (equivalence tests
        /// and the benchmark gate). Panics on length mismatch.
        pub fn $with(level: SimdLevel, src: &[$src], dst: &mut [$dst]) {
            assert_eq!(src.len(), dst.len(), "conversion kernel length mismatch");
            match level {
                #[cfg(all(feature = "simd", target_arch = "x86_64"))]
                SimdLevel::Avx2 | SimdLevel::Avx512 => {
                    // SAFETY: levels above Portable are only reachable
                    // through `level_supported`, which verified avx2+fma.
                    unsafe { x86::$name(src, dst) }
                }
                _ => portable::$name(src, dst),
            }
        }
    };
}

dispatch_conversion!(
    widen_f16_to_f32,
    widen_f16_to_f32_with,
    f16,
    f32,
    "Batched exact widening `f16 → f32` over whole buffers."
);
dispatch_conversion!(
    narrow_f32_to_f16,
    narrow_f32_to_f16_with,
    f32,
    f16,
    "Batched RTNE narrowing `f32 → f16` over whole buffers."
);
dispatch_conversion!(
    widen_bf16_to_f32,
    widen_bf16_to_f32_with,
    bf16,
    f32,
    "Batched exact widening `bf16 → f32` over whole buffers."
);
dispatch_conversion!(
    narrow_f32_to_bf16,
    narrow_f32_to_bf16_with,
    f32,
    bf16,
    "Batched RTNE narrowing `f32 → bf16` over whole buffers."
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_names_roundtrip() {
        for level in [SimdLevel::Portable, SimdLevel::Avx2, SimdLevel::Avx512, SimdLevel::Neon] {
            assert_eq!(SimdLevel::parse(level.name()), Some(level));
        }
        assert_eq!(SimdLevel::parse("scalar"), Some(SimdLevel::Portable));
        assert_eq!(SimdLevel::parse("AVX2"), Some(SimdLevel::Avx2));
        assert_eq!(SimdLevel::parse("sse9"), None);
        assert_eq!(SimdLevel::parse(""), None);
    }

    #[test]
    fn portable_is_always_supported() {
        assert!(level_supported(SimdLevel::Portable));
        // Whatever detection picked must itself be supported.
        assert!(level_supported(detected_level()));
        assert!(level_supported(active_level()));
    }
}
