//! A `#[repr(C)]` complex type generic over [`Real`].
//!
//! The frequency-domain half of the FFTMatvec pipeline (phases 2–4) works
//! entirely on complex data; rocBLAS/cuBLAS call these the `c`/`z`
//! datatypes. The layout is the standard interleaved (re, im) pair so a
//! `&[Complex<T>]` can be reinterpreted as `&[T]` of twice the length when
//! byte counts matter for the bandwidth model.

use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

use crate::real::Real;

/// Interleaved complex number. Field order matches C/CUDA `float2`/`double2`.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
#[repr(C)]
pub struct Complex<T> {
    /// Real part.
    pub re: T,
    /// Imaginary part.
    pub im: T,
}

impl<T: Real> Complex<T> {
    /// The complex zero.
    pub const fn zero() -> Self
    where
        T: Real,
    {
        Complex { re: T::ZERO, im: T::ZERO }
    }

    /// The complex one.
    pub const fn one() -> Self {
        Complex { re: T::ONE, im: T::ZERO }
    }

    /// The imaginary unit.
    pub const fn i() -> Self {
        Complex { re: T::ZERO, im: T::ONE }
    }

    #[inline(always)]
    pub fn new(re: T, im: T) -> Self {
        Complex { re, im }
    }

    /// Embed a real number.
    #[inline(always)]
    pub fn from_real(re: T) -> Self {
        Complex { re, im: T::ZERO }
    }

    /// Complex conjugate.
    #[inline(always)]
    pub fn conj(self) -> Self {
        Complex { re: self.re, im: -self.im }
    }

    /// Squared magnitude `re² + im²`.
    #[inline(always)]
    pub fn norm_sqr(self) -> T {
        self.re.mul_add(self.re, self.im * self.im)
    }

    /// Magnitude.
    #[inline(always)]
    pub fn abs(self) -> T {
        self.norm_sqr().sqrt()
    }

    /// Scale by a real factor.
    #[inline(always)]
    pub fn scale(self, k: T) -> Self {
        Complex { re: self.re * k, im: self.im * k }
    }

    /// `e^{iθ}` — the twiddle-factor primitive.
    #[inline(always)]
    pub fn expi(theta: T) -> Self {
        let (s, c) = theta.sin_cos();
        Complex { re: c, im: s }
    }

    /// Construct from polar form `r·e^{iθ}`.
    #[inline(always)]
    pub fn from_polar(r: T, theta: T) -> Self {
        Self::expi(theta).scale(r)
    }

    /// Fused multiply-add `self * a + b` using real FMAs where profitable.
    #[inline(always)]
    pub fn mul_add(self, a: Self, b: Self) -> Self {
        Complex {
            re: self.re.mul_add(a.re, (-self.im).mul_add(a.im, b.re)),
            im: self.re.mul_add(a.im, self.im.mul_add(a.re, b.im)),
        }
    }

    /// Multiplicative inverse. Not guarded against zero; callers in the FFT
    /// only invert unit-magnitude twiddles.
    #[inline(always)]
    pub fn recip(self) -> Self {
        let d = self.norm_sqr().recip();
        Complex { re: self.re * d, im: -self.im * d }
    }

    /// Cast between precisions through `f64`.
    #[inline(always)]
    pub fn cast<U: Real>(self) -> Complex<U> {
        Complex { re: U::from_f64(self.re.to_f64()), im: U::from_f64(self.im.to_f64()) }
    }

    /// Both components finite?
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

/// View interleaved complex storage as a flat real slice of twice the
/// length (the `#[repr(C)]` layout guarantee; see the layout test).
#[inline]
pub fn as_flat<T: Real>(v: &[Complex<T>]) -> &[T] {
    // SAFETY: Complex<T> is #[repr(C)] { re: T, im: T } with no padding,
    // so n complex elements are exactly 2n properly-initialized Ts.
    unsafe { core::slice::from_raw_parts(v.as_ptr() as *const T, 2 * v.len()) }
}

/// Mutable flat real view of interleaved complex storage.
#[inline]
pub fn as_flat_mut<T: Real>(v: &mut [Complex<T>]) -> &mut [T] {
    // SAFETY: as above; the borrow is exclusive and T has no invalid
    // bit patterns that writing component-wise could produce.
    unsafe { core::slice::from_raw_parts_mut(v.as_mut_ptr() as *mut T, 2 * v.len()) }
}

impl<T: Real> Add for Complex<T> {
    type Output = Self;
    #[inline(always)]
    fn add(self, rhs: Self) -> Self {
        Complex { re: self.re + rhs.re, im: self.im + rhs.im }
    }
}

impl<T: Real> Sub for Complex<T> {
    type Output = Self;
    #[inline(always)]
    fn sub(self, rhs: Self) -> Self {
        Complex { re: self.re - rhs.re, im: self.im - rhs.im }
    }
}

impl<T: Real> Mul for Complex<T> {
    type Output = Self;
    #[inline(always)]
    fn mul(self, rhs: Self) -> Self {
        Complex {
            re: self.re.mul_add(rhs.re, -(self.im * rhs.im)),
            im: self.re.mul_add(rhs.im, self.im * rhs.re),
        }
    }
}

impl<T: Real> Div for Complex<T> {
    type Output = Self;
    // Multiply-by-reciprocal is the intended complex division algorithm.
    #[allow(clippy::suspicious_arithmetic_impl)]
    #[inline(always)]
    fn div(self, rhs: Self) -> Self {
        self * rhs.recip()
    }
}

impl<T: Real> Neg for Complex<T> {
    type Output = Self;
    #[inline(always)]
    fn neg(self) -> Self {
        Complex { re: -self.re, im: -self.im }
    }
}

impl<T: Real> AddAssign for Complex<T> {
    #[inline(always)]
    fn add_assign(&mut self, rhs: Self) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl<T: Real> SubAssign for Complex<T> {
    #[inline(always)]
    fn sub_assign(&mut self, rhs: Self) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl<T: Real> MulAssign for Complex<T> {
    #[inline(always)]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl<T: Real> Mul<T> for Complex<T> {
    type Output = Self;
    #[inline(always)]
    fn mul(self, rhs: T) -> Self {
        self.scale(rhs)
    }
}

impl<T: Real> Sum for Complex<T> {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::zero(), |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type C = Complex<f64>;

    fn close(a: C, b: C, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn field_axioms() {
        let a = C::new(1.5, -2.0);
        let b = C::new(-0.25, 3.0);
        let c = C::new(4.0, 0.5);
        assert!(close(a + b, b + a, 1e-15));
        assert!(close(a * b, b * a, 1e-15));
        assert!(close(a * (b + c), a * b + a * c, 1e-12));
        assert!(close(a + C::zero(), a, 0.0));
        assert!(close(a * C::one(), a, 0.0));
        assert!(close(a * a.recip(), C::one(), 1e-14));
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert!(close(C::i() * C::i(), -C::one(), 1e-16));
    }

    #[test]
    fn conjugation() {
        let a = C::new(3.0, 4.0);
        assert_eq!(a.conj().im, -4.0);
        assert!((a * a.conj()).re - 25.0 < 1e-12);
        assert!(((a * a.conj()).im).abs() < 1e-12);
        assert_eq!(a.abs(), 5.0);
    }

    #[test]
    fn expi_is_unit_circle() {
        for k in 0..16 {
            let theta = 2.0 * core::f64::consts::PI * (k as f64) / 16.0;
            let w = C::expi(theta);
            assert!((w.abs() - 1.0).abs() < 1e-14);
        }
        // e^{iπ} = -1
        assert!(close(C::expi(core::f64::consts::PI), -C::one(), 1e-15));
    }

    #[test]
    fn mul_add_matches_separate_ops() {
        let a = C::new(1.0, 2.0);
        let b = C::new(3.0, -1.0);
        let c = C::new(-2.0, 0.5);
        assert!(close(a.mul_add(b, c), a * b + c, 1e-13));
    }

    #[test]
    fn division() {
        let a = C::new(2.0, 7.0);
        let b = C::new(-3.0, 0.25);
        assert!(close(a / b * b, a, 1e-12));
    }

    #[test]
    fn precision_cast_roundtrip_f32_values() {
        let a = Complex::<f32>::new(1.5, -0.25); // exactly representable
        let wide: Complex<f64> = a.cast();
        let narrow: Complex<f32> = wide.cast();
        assert_eq!(a, narrow);
    }

    #[test]
    fn layout_is_interleaved() {
        assert_eq!(core::mem::size_of::<Complex<f32>>(), 8);
        assert_eq!(core::mem::size_of::<Complex<f64>>(), 16);
        let v = [C::new(1.0, 2.0), C::new(3.0, 4.0)];
        let flat: &[f64] = unsafe { core::slice::from_raw_parts(v.as_ptr() as *const f64, 4) };
        assert_eq!(flat, &[1.0, 2.0, 3.0, 4.0]);
    }
}
