//! The [`Real`] trait: a minimal floating-point abstraction over `f32`/`f64`.
//!
//! The paper's kernels are templated over the compute datatype; here the
//! same single-source property is obtained with a trait. Only operations the
//! workspace actually needs are included, so the trait stays small and every
//! method maps to one hardware instruction or libm call.

use core::fmt::{Debug, Display};
use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

use crate::precision::Precision;

/// Abstraction over the floating-point formats of the precision lattice:
/// the paper's FP32/FP64 pair (Section 3.2) plus the software-emulated
/// 16-bit tiers [`crate::half::f16`] and [`crate::half::bf16`]. The
/// 16-bit types compute in `f32` and round every result back to 16-bit
/// storage, so one generic kernel source serves all four tiers — the
/// same single-source property the paper gets from templated CUDA/HIP.
pub trait Real:
    Copy
    + Clone
    + Send
    + Sync
    + PartialOrd
    + PartialEq
    + Default
    + Debug
    + Display
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + 'static
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// The constant 2.
    const TWO: Self;
    /// Machine epsilon (unit roundoff × 2) of this format.
    const EPSILON: Self;
    /// π in this format.
    const PI: Self;
    /// Runtime tag for this format.
    const PRECISION: Precision;
    /// Size of one element in bytes (2, 4, or 8).
    const BYTES: usize;

    /// Lossy conversion from `f64` (the workspace's reference precision).
    fn from_f64(x: f64) -> Self;
    /// Widening (f64) or identity conversion to `f64`.
    fn to_f64(self) -> f64;
    /// Conversion from a count; exact for the sizes used here.
    #[inline]
    fn from_usize(n: usize) -> Self {
        Self::from_f64(n as f64)
    }

    fn abs(self) -> Self;
    fn sqrt(self) -> Self;
    fn ln(self) -> Self;
    fn exp(self) -> Self;
    fn sin(self) -> Self;
    fn cos(self) -> Self;
    /// Simultaneous sine and cosine (twiddle-factor generation).
    fn sin_cos(self) -> (Self, Self);
    /// Fused multiply-add: `self * a + b` with a single rounding.
    fn mul_add(self, a: Self, b: Self) -> Self;
    fn maximum(self, other: Self) -> Self;
    fn minimum(self, other: Self) -> Self;
    fn recip(self) -> Self;
    fn is_finite(self) -> bool;
}

macro_rules! impl_real {
    ($t:ty, $prec:expr, $bytes:expr) => {
        impl Real for $t {
            const ZERO: Self = 0.0;
            const ONE: Self = 1.0;
            const TWO: Self = 2.0;
            const EPSILON: Self = <$t>::EPSILON;
            const PI: Self = core::f64::consts::PI as $t;
            const PRECISION: Precision = $prec;
            const BYTES: usize = $bytes;

            #[inline(always)]
            fn from_f64(x: f64) -> Self {
                x as $t
            }
            #[inline(always)]
            fn to_f64(self) -> f64 {
                self as f64
            }
            #[inline(always)]
            fn abs(self) -> Self {
                <$t>::abs(self)
            }
            #[inline(always)]
            fn sqrt(self) -> Self {
                <$t>::sqrt(self)
            }
            #[inline(always)]
            fn ln(self) -> Self {
                <$t>::ln(self)
            }
            #[inline(always)]
            fn exp(self) -> Self {
                <$t>::exp(self)
            }
            #[inline(always)]
            fn sin(self) -> Self {
                <$t>::sin(self)
            }
            #[inline(always)]
            fn cos(self) -> Self {
                <$t>::cos(self)
            }
            #[inline(always)]
            fn sin_cos(self) -> (Self, Self) {
                <$t>::sin_cos(self)
            }
            #[inline(always)]
            fn mul_add(self, a: Self, b: Self) -> Self {
                <$t>::mul_add(self, a, b)
            }
            #[inline(always)]
            fn maximum(self, other: Self) -> Self {
                <$t>::max(self, other)
            }
            #[inline(always)]
            fn minimum(self, other: Self) -> Self {
                <$t>::min(self, other)
            }
            #[inline(always)]
            fn recip(self) -> Self {
                <$t>::recip(self)
            }
            #[inline(always)]
            fn is_finite(self) -> bool {
                <$t>::is_finite(self)
            }
        }
    };
}

impl_real!(f32, Precision::Single, 4);
impl_real!(f64, Precision::Double, 8);

#[cfg(test)]
mod tests {
    use super::*;

    fn generic_smoke<T: Real>() {
        assert_eq!(T::ZERO + T::ONE, T::ONE);
        assert_eq!(T::ONE + T::ONE, T::TWO);
        let x = T::from_f64(2.0);
        assert!((x.sqrt().to_f64() - core::f64::consts::SQRT_2).abs() < 1e-6);
        let (s, c) = T::PI.sin_cos();
        assert!(s.abs().to_f64() < 1e-6);
        assert!((c.to_f64() + 1.0).abs() < 1e-6);
        assert!(T::EPSILON > T::ZERO);
        assert!(x.is_finite());
        assert_eq!(x.maximum(T::ONE), x);
        assert_eq!(x.minimum(T::ONE), T::ONE);
    }

    #[test]
    fn f32_smoke() {
        generic_smoke::<f32>();
        assert_eq!(f32::PRECISION, Precision::Single);
        assert_eq!(f32::BYTES, 4);
    }

    #[test]
    fn f64_smoke() {
        generic_smoke::<f64>();
        assert_eq!(f64::PRECISION, Precision::Double);
        assert_eq!(f64::BYTES, 8);
    }

    #[test]
    fn mul_add_is_fused() {
        // FMA keeps the low-order product bits that a separate mul+add loses.
        let a = 1.0f64 + 1e-8;
        let fused = a.mul_add(a, -1.0);
        let unfused = a * a - 1.0;
        // Both approximate 2e-8, fused must be at least as accurate.
        let exact = 2e-8 + 1e-16;
        assert!((fused - exact).abs() <= (unfused - exact).abs());
    }

    #[test]
    fn epsilon_ordering_matches_paper() {
        // eps_s ≈ 1e-7, eps_d ≈ 1e-16 (Section 3.2.1 notation).
        let (eps_s, eps_d) = (f32::EPSILON as f64, f64::EPSILON);
        assert!(eps_s > 1e-8 && eps_s < 1e-6);
        assert!(eps_d > 1e-17 && eps_d < 1e-15);
    }
}
