//! Deterministic random number generation for workloads and tests.
//!
//! A small, dependency-free SplitMix64 generator keeps every experiment
//! bit-reproducible across runs and platforms. It also implements the
//! paper's *mantissa-stuffing* input generator (Section 4.2.1):
//!
//! > "we initialized the matrices and vectors with double-precision
//! > floating point values that cannot be accurately represented as
//! > single-precision floating point numbers. This was done by setting
//! > mantissa bits in positions greater than 23 to one."
//!
//! Without that step, casting the broadcast to single precision would be
//! exact and the Pareto-front analysis would be biased toward lower
//! precisions.

/// SplitMix64 PRNG (Steele, Lea, Flood 2014). Passes BigCrush when used as
/// a 64-bit generator; more than adequate for workload generation.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53 random bits.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi)`.
    #[inline]
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform integer in `[0, n)`. `n` must be nonzero.
    #[inline]
    pub fn next_usize(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }

    /// Standard normal via Box–Muller.
    pub fn normal(&mut self) -> f64 {
        // Avoid ln(0) by offsetting u1 away from zero.
        let u1 = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let u1 = u1.max(f64::MIN_POSITIVE);
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (2.0 * core::f64::consts::PI * u2).cos()
    }

    /// Fill a slice with uniform `[lo, hi)` values.
    pub fn fill_uniform(&mut self, out: &mut [f64], lo: f64, hi: f64) {
        for x in out.iter_mut() {
            *x = self.uniform(lo, hi);
        }
    }

    /// Fill a slice with standard normal values.
    pub fn fill_normal(&mut self, out: &mut [f64]) {
        for x in out.iter_mut() {
            *x = self.normal();
        }
    }

    /// Uniform `[lo, hi)` values with mantissa stuffing applied.
    pub fn fill_uniform_stuffed(&mut self, out: &mut [f64], lo: f64, hi: f64) {
        for x in out.iter_mut() {
            *x = mantissa_stuff(self.uniform(lo, hi));
        }
    }
}

/// Make `x` maximally lossy under an `f64 → f32` cast, preserving the
/// paper's intent of §4.2.1 (inputs that "cannot be accurately represented
/// as single-precision").
///
/// Note a subtlety in the paper's literal recipe: setting *all* mantissa
/// bits beyond position 23 to one produces a tail of `0.111…₂ ≈ 1` ULP,
/// which rounds *up* to within `2⁻⁵²` of the original value — the cast
/// would be almost exact and the Pareto analysis would stay biased. We
/// instead set the tail just above the rounding midpoint (guard bit set,
/// one low bit set, the rest cleared), which forces a cast error of
/// ~0.5 ULP₂₃ ≈ 3·10⁻⁸ relative — the worst case. Zero, infinities, and
/// NaN pass through unchanged.
#[inline]
pub fn mantissa_stuff(x: f64) -> f64 {
    if x == 0.0 || !x.is_finite() {
        return x;
    }
    // f64 has 52 mantissa bits; f32 keeps the top 23 (bits 29..52).
    // Clear the low 29, then set the guard bit (28) and bit 0: the tail
    // becomes (1/2 + 2⁻²⁸)·ULP₂₃ — just past the midpoint.
    const LOW_MASK: u64 = (1u64 << 29) - 1;
    const STUFF: u64 = (1u64 << 28) | 1;
    f64::from_bits((x.to_bits() & !LOW_MASK) | STUFF)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn uniform_bounds() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
            let y = rng.uniform(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&y));
        }
    }

    #[test]
    fn uniform_mean_is_centred() {
        let mut rng = SplitMix64::new(1);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn normal_moments() {
        let mut rng = SplitMix64::new(2);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.normal()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn mantissa_stuffing_defeats_f32_roundtrip() {
        let mut rng = SplitMix64::new(3);
        for _ in 0..1000 {
            let x = mantissa_stuff(rng.uniform(-10.0, 10.0));
            // Casting to f32 and back must lose a near-worst-case amount:
            // ~0.5 ULP₂₃ ≈ 3e-8 relative (not just any nonzero bits).
            let rt = x as f32 as f64;
            let rel = ((rt - x) / x).abs();
            assert!(rel > 1e-8, "stuffed value nearly survived f32 roundtrip: {x} rel {rel}");
            assert!(rel < 1.2e-7, "stuffing changed the value too much: {rel}");
        }
    }

    #[test]
    fn mantissa_stuffing_small_perturbation() {
        let x = 1.0;
        let s = mantissa_stuff(x);
        assert!(s > x);
        assert!((s - x) / x < 1e-6, "stuffing changed the value too much");
    }

    #[test]
    fn mantissa_stuffing_edge_cases() {
        assert_eq!(mantissa_stuff(0.0), 0.0);
        assert!(mantissa_stuff(f64::INFINITY).is_infinite());
        assert!(mantissa_stuff(f64::NAN).is_nan());
        // Negative values stay negative with the same magnitude class.
        assert!(mantissa_stuff(-1.0) < 0.0);
    }

    #[test]
    fn next_usize_in_range() {
        let mut rng = SplitMix64::new(9);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let k = rng.next_usize(5);
            assert!(k < 5);
            seen[k] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }
}
