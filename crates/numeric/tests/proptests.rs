//! Property-based tests for the numeric foundations: complex field
//! behavior, precision-cast semantics, buffer invariants, and the
//! mantissa-stuffing contract.

use fftmatvec_numeric::rng::mantissa_stuff;
use fftmatvec_numeric::{Complex, ComplexBuffer, Precision, RealBuffer, C64};
use proptest::prelude::*;

fn finite() -> impl Strategy<Value = f64> {
    prop::num::f64::NORMAL.prop_filter("bounded", |x| x.abs() < 1e100 && x.abs() > 1e-100)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Complex multiplication is commutative/associative to roundoff and
    /// conjugation is an involution distributing over products.
    #[test]
    fn complex_algebra(ar in -1e3f64..1e3, ai in -1e3f64..1e3,
                       br in -1e3f64..1e3, bi in -1e3f64..1e3) {
        let a = C64::new(ar, ai);
        let b = C64::new(br, bi);
        let ab = a * b;
        let ba = b * a;
        prop_assert!((ab - ba).abs() <= 1e-12 * (1.0 + ab.abs()));
        prop_assert_eq!(a.conj().conj(), a);
        let lhs = (a * b).conj();
        let rhs = a.conj() * b.conj();
        prop_assert!((lhs - rhs).abs() <= 1e-12 * (1.0 + lhs.abs()));
        // |ab| = |a||b| within roundoff.
        prop_assert!((ab.abs() - a.abs() * b.abs()).abs() <= 1e-9 * (1.0 + ab.abs()));
    }

    /// expi lands on the unit circle and respects angle addition.
    #[test]
    fn expi_group_law(t1 in -10.0f64..10.0, t2 in -10.0f64..10.0) {
        let w1 = C64::expi(t1);
        let w2 = C64::expi(t2);
        prop_assert!((w1.abs() - 1.0).abs() < 1e-12);
        let prod = w1 * w2;
        let direct = C64::expi(t1 + t2);
        prop_assert!((prod - direct).abs() < 1e-12);
    }

    /// Widening casts are exact; narrowing then widening is idempotent.
    #[test]
    fn precision_cast_semantics(x in finite()) {
        let buf = RealBuffer::from_f64(Precision::Double, &[x]);
        let narrowed = buf.clone().cast(Precision::Single);
        let rewidened = narrowed.clone().cast(Precision::Double);
        // f32 round-trip is a projection: applying it twice == once.
        let twice = rewidened.clone().cast(Precision::Single).cast(Precision::Double);
        prop_assert_eq!(rewidened.get(0), twice.get(0));
        // Widening an f32 value is exact.
        prop_assert_eq!(narrowed.get(0) as f32, rewidened.get(0) as f32);
    }

    /// Mantissa stuffing always defeats the f32 round-trip with a bounded,
    /// near-worst-case relative perturbation, and is idempotent.
    #[test]
    fn stuffing_contract(x in -1e6f64..1e6) {
        prop_assume!(x != 0.0 && x.abs() > 1e-30);
        let s = mantissa_stuff(x);
        // Stuffing changes x only in the low mantissa (tiny relative move).
        prop_assert!(((s - x) / x).abs() < 1e-7);
        // The cast must lose ~0.5 ULP23.
        let rel = ((s as f32 as f64 - s) / s).abs();
        prop_assert!(rel > 1e-8, "survived: {s}");
        prop_assert!(rel < 1.2e-7, "too lossy: {s}");
        // Idempotent.
        prop_assert_eq!(mantissa_stuff(s), s);
    }

    /// Buffer accumulate over many precisions equals scalar summation.
    #[test]
    fn buffer_accumulate(values in prop::collection::vec(-1e3f64..1e3, 1..20)) {
        let n = values.len();
        let mut acc = RealBuffer::zeros(Precision::Double, n);
        let parts: Vec<RealBuffer> = values
            .iter()
            .map(|&v| RealBuffer::from_f64(Precision::Double, &vec![v; n]))
            .collect();
        for p in &parts {
            acc.accumulate(p);
        }
        let want: f64 = values.iter().sum();
        for i in 0..n {
            prop_assert!((acc.get(i) - want).abs() < 1e-9 * (1.0 + want.abs()));
        }
    }

    /// Complex buffers preserve length/precision invariants under cast.
    #[test]
    fn complex_buffer_invariants(len in 0usize..64, re in -10.0f64..10.0) {
        let data: Vec<C64> = (0..len).map(|i| Complex::new(re, i as f64)).collect();
        let b = ComplexBuffer::from_c64(Precision::Double, &data);
        prop_assert_eq!(b.len(), len);
        prop_assert_eq!(b.bytes(), len * 16);
        let s = b.clone().cast(Precision::Single);
        prop_assert_eq!(s.len(), len);
        prop_assert_eq!(s.bytes(), len * 8);
        prop_assert_eq!(s.precision(), Precision::Single);
        // Casting back preserves the f32-representable content.
        let back = s.cast(Precision::Double);
        for i in 0..len {
            prop_assert_eq!(back.get(i).re as f32, data[i].re as f32);
        }
    }
}
