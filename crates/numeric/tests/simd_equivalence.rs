//! Bit-for-bit equivalence of the SIMD conversion kernels against the
//! portable scalars, plus the forced-fallback dispatch test.
//!
//! The widening direction is checked exhaustively (all 2¹⁶ patterns,
//! NaNs included); the narrowing direction densely samples every
//! rounding boundary (the midpoint between each pair of adjacent 16-bit
//! values, ±1 f32 ulp) plus a large random sweep over raw f32 bit
//! patterns so infinities, NaN payloads, and subnormals are all hit.

use std::sync::Mutex;

use fftmatvec_numeric::half::{bf16, f16, f16_bits_to_f32};
use fftmatvec_numeric::simd::{
    active_level, level_supported, narrow_f32_to_bf16, narrow_f32_to_bf16_with, narrow_f32_to_f16,
    narrow_f32_to_f16_with, set_active_level, widen_bf16_to_f32, widen_bf16_to_f32_with,
    widen_f16_to_f32, widen_f16_to_f32_with, SimdLevel,
};
use fftmatvec_numeric::SplitMix64;
use proptest::prelude::*;

/// Guards `set_active_level` (process-global) against concurrent tests.
static LEVEL_LOCK: Mutex<()> = Mutex::new(());

fn supported_levels() -> Vec<SimdLevel> {
    [SimdLevel::Portable, SimdLevel::Avx2, SimdLevel::Avx512, SimdLevel::Neon]
        .into_iter()
        .filter(|&l| level_supported(l))
        .collect()
}

#[test]
fn widen_f16_exhaustive_all_levels() {
    let src: Vec<f16> = (0..=u16::MAX).map(f16::from_bits).collect();
    let mut reference = vec![0f32; src.len()];
    widen_f16_to_f32_with(SimdLevel::Portable, &src, &mut reference);
    for level in supported_levels() {
        let mut out = vec![0f32; src.len()];
        widen_f16_to_f32_with(level, &src, &mut out);
        for (i, (a, b)) in out.iter().zip(&reference).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "f16 widen {level} at pattern {i:#06x}");
        }
    }
}

#[test]
fn widen_bf16_exhaustive_all_levels() {
    let src: Vec<bf16> = (0..=u16::MAX).map(bf16::from_bits).collect();
    let mut reference = vec![0f32; src.len()];
    widen_bf16_to_f32_with(SimdLevel::Portable, &src, &mut reference);
    for level in supported_levels() {
        let mut out = vec![0f32; src.len()];
        widen_bf16_to_f32_with(level, &src, &mut out);
        for (i, (a, b)) in out.iter().zip(&reference).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "bf16 widen {level} at pattern {i:#06x}");
        }
    }
}

/// Dense coverage of f32 inputs: every finite f16 value, every midpoint
/// between adjacent f16 values, each ±1 f32 ulp, plus specials.
fn f16_boundary_inputs() -> Vec<f32> {
    let mut v = Vec::with_capacity(9 * (1 << 16));
    for bits in 0..u16::MAX {
        let a = f16_bits_to_f32(bits);
        if !a.is_finite() {
            continue;
        }
        let around = |x: f32, out: &mut Vec<f32>| {
            let b = x.to_bits();
            out.push(f32::from_bits(b.wrapping_sub(1)));
            out.push(x);
            out.push(f32::from_bits(b.wrapping_add(1)));
        };
        around(a, &mut v);
        let next = f16_bits_to_f32(bits + 1);
        if next.is_finite() {
            // The f32 midpoint of two adjacent f16s is exact (≤ 12 extra
            // significand bits needed, f32 has 13 beyond f16).
            around((a + next) / 2.0, &mut v);
        }
    }
    v.extend_from_slice(&[
        0.0,
        -0.0,
        f32::INFINITY,
        f32::NEG_INFINITY,
        f32::NAN,
        -f32::NAN,
        f32::from_bits(0x7fc0_1234), // quiet NaN with payload
        f32::from_bits(0x7f80_0001), // signaling NaN
        f32::from_bits(0xff80_4321),
        f32::MIN_POSITIVE,
        f32::MIN_POSITIVE / 4.0, // f32 subnormal
        65519.9,
        65520.0,
        65520.1,
    ]);
    v
}

#[test]
fn narrow_f16_boundaries_all_levels() {
    let src = f16_boundary_inputs();
    let mut reference = vec![f16::from_bits(0); src.len()];
    narrow_f32_to_f16_with(SimdLevel::Portable, &src, &mut reference);
    for level in supported_levels() {
        let mut out = vec![f16::from_bits(0); src.len()];
        narrow_f32_to_f16_with(level, &src, &mut out);
        for (i, (a, b)) in out.iter().zip(&reference).enumerate() {
            assert!(
                a.bit_eq(*b),
                "f16 narrow {level} at input {:e} ({:#010x}): {:#06x} != {:#06x}",
                src[i],
                src[i].to_bits(),
                a.to_bits(),
                b.to_bits()
            );
        }
    }
}

#[test]
fn narrow_bf16_boundaries_all_levels() {
    // bf16 boundaries are uniform in the bit pattern: value (b<<16),
    // midpoint (b<<16)|0x8000 — sweep all b with the interesting low
    // halves, then a dense random sweep over raw patterns.
    let mut src = Vec::with_capacity(8 * (1 << 16));
    for b in 0..=u16::MAX {
        let hi = (b as u32) << 16;
        for lo in [0x0000, 0x0001, 0x7fff, 0x8000, 0x8001, 0xffff] {
            src.push(f32::from_bits(hi | lo));
        }
    }
    let mut rng = SplitMix64::new(3);
    src.extend((0..500_000).map(|_| f32::from_bits(rng.next_u64() as u32)));
    let mut reference = vec![bf16::from_bits(0); src.len()];
    narrow_f32_to_bf16_with(SimdLevel::Portable, &src, &mut reference);
    for level in supported_levels() {
        let mut out = vec![bf16::from_bits(0); src.len()];
        narrow_f32_to_bf16_with(level, &src, &mut out);
        for (i, (a, b)) in out.iter().zip(&reference).enumerate() {
            assert!(
                a.bit_eq(*b),
                "bf16 narrow {level} at input {:#010x}: {:#06x} != {:#06x}",
                src[i].to_bits(),
                a.to_bits(),
                b.to_bits()
            );
        }
    }
}

#[test]
fn narrow_f16_random_bit_patterns_all_levels() {
    let mut rng = SplitMix64::new(5);
    let src: Vec<f32> = (0..500_000).map(|_| f32::from_bits(rng.next_u64() as u32)).collect();
    let mut reference = vec![f16::from_bits(0); src.len()];
    narrow_f32_to_f16_with(SimdLevel::Portable, &src, &mut reference);
    for level in supported_levels() {
        let mut out = vec![f16::from_bits(0); src.len()];
        narrow_f32_to_f16_with(level, &src, &mut out);
        for (i, (a, b)) in out.iter().zip(&reference).enumerate() {
            assert!(a.bit_eq(*b), "f16 narrow {level} at {:#010x}", src[i].to_bits());
        }
    }
}

#[test]
fn forced_fallback_runs_portable_on_capable_hosts() {
    let _guard = LEVEL_LOCK.lock().unwrap();
    let prev = set_active_level(SimdLevel::Portable);
    assert_eq!(active_level(), SimdLevel::Portable);

    // The implicit entry points must route to the portable kernels and
    // still produce the same bits as any other level.
    let mut rng = SplitMix64::new(9);
    let f32s: Vec<f32> = (0..4099).map(|_| rng.uniform(-70000.0, 70000.0) as f32).collect();
    let mut h = vec![f16::from_bits(0); f32s.len()];
    let mut b = vec![bf16::from_bits(0); f32s.len()];
    narrow_f32_to_f16(&f32s, &mut h);
    narrow_f32_to_bf16(&f32s, &mut b);
    let mut wh = vec![0f32; f32s.len()];
    let mut wb = vec![0f32; f32s.len()];
    widen_f16_to_f32(&h, &mut wh);
    widen_bf16_to_f32(&b, &mut wb);

    set_active_level(prev);

    let mut h2 = vec![f16::from_bits(0); f32s.len()];
    let mut b2 = vec![bf16::from_bits(0); f32s.len()];
    narrow_f32_to_f16(&f32s, &mut h2);
    narrow_f32_to_bf16(&f32s, &mut b2);
    assert!(h.iter().zip(&h2).all(|(x, y)| x.bit_eq(*y)));
    assert!(b.iter().zip(&b2).all(|(x, y)| x.bit_eq(*y)));
    let mut wh2 = vec![0f32; f32s.len()];
    widen_f16_to_f32(&h, &mut wh2);
    assert_eq!(
        wh.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
        wh2.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
    );
    let mut wb2 = vec![0f32; f32s.len()];
    widen_bf16_to_f32(&b, &mut wb2);
    assert_eq!(
        wb.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
        wb2.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Narrowing kernels agree across levels on arbitrary f32 buffers of
    /// arbitrary length (exercises the vector body + scalar tail split).
    #[test]
    fn narrow_agrees_any_length(len in 0usize..600, seed in 0u64..u64::MAX) {
        let mut rng = SplitMix64::new(seed);
        let src: Vec<f32> = (0..len).map(|_| f32::from_bits(rng.next_u64() as u32)).collect();
        let mut h_ref = vec![f16::from_bits(0); len];
        let mut b_ref = vec![bf16::from_bits(0); len];
        narrow_f32_to_f16_with(SimdLevel::Portable, &src, &mut h_ref);
        narrow_f32_to_bf16_with(SimdLevel::Portable, &src, &mut b_ref);
        for level in supported_levels() {
            let mut h = vec![f16::from_bits(0); len];
            let mut b = vec![bf16::from_bits(0); len];
            narrow_f32_to_f16_with(level, &src, &mut h);
            narrow_f32_to_bf16_with(level, &src, &mut b);
            prop_assert!(h.iter().zip(&h_ref).all(|(x, y)| x.bit_eq(*y)));
            prop_assert!(b.iter().zip(&b_ref).all(|(x, y)| x.bit_eq(*y)));
        }
    }

    /// Widening kernels agree across levels on arbitrary bit patterns
    /// and lengths.
    #[test]
    fn widen_agrees_any_length(len in 0usize..600, seed in 0u64..u64::MAX) {
        let mut rng = SplitMix64::new(seed);
        let h_src: Vec<f16> = (0..len).map(|_| f16::from_bits(rng.next_u64() as u16)).collect();
        let b_src: Vec<bf16> = (0..len).map(|_| bf16::from_bits(rng.next_u64() as u16)).collect();
        let mut h_ref = vec![0f32; len];
        let mut b_ref = vec![0f32; len];
        widen_f16_to_f32_with(SimdLevel::Portable, &h_src, &mut h_ref);
        widen_bf16_to_f32_with(SimdLevel::Portable, &b_src, &mut b_ref);
        for level in supported_levels() {
            let mut h = vec![0f32; len];
            let mut b = vec![0f32; len];
            widen_f16_to_f32_with(level, &h_src, &mut h);
            widen_bf16_to_f32_with(level, &b_src, &mut b);
            prop_assert!(h.iter().zip(&h_ref).all(|(x, y)| x.to_bits() == y.to_bits()));
            prop_assert!(b.iter().zip(&b_ref).all(|(x, y)| x.to_bits() == y.to_bits()));
        }
    }
}
