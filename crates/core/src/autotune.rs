//! Online precision autotuning: the cheapest configuration that meets a
//! caller's error budget (ROADMAP item 3; the paper's §3.2/§4.2
//! tolerance-driven selection run live instead of offline).
//!
//! The selection problem factors cleanly:
//!
//! 1. **Admissibility** is analytic — [`admissible_configs`] prunes the
//!    1024-point lattice by the Eq. 6 bound
//!    ([`crate::error_analysis::error_bound`]) with a
//!    [`condition_estimate`](crate::error_analysis::condition_estimate)-derived
//!    `κ`, so no configuration is ever *timed* unless it can satisfy the
//!    budget.
//! 2. **Cost** is measured, not modeled — a [`TierCalibration`] times one
//!    warm apply per precision tier actually present in the admissible
//!    set (plans come warm from the process-wide FFT cache) and refines
//!    those timings by exponential moving average as later measurements
//!    arrive. The static GPU cost model in [`crate::timing`] plays no
//!    role here: on this host, in this process, the 16-bit tiers are
//!    software-emulated and *slower* than f32, and only a measurement
//!    knows that.
//!
//! A mixed configuration's predicted cost blends the per-tier timings by
//! [`PhaseWeights`] — per-phase element-traffic fractions derived from
//! the operator dimensions, the same traffic accounting the cost model
//! uses, but normalized so a uniform configuration reproduces its
//! measured tier time exactly.

use std::time::Instant;

use fftmatvec_numeric::Precision;

use crate::error_analysis::{error_bound, BoundParams, ErrorBound};
use crate::linop::{ConfigError, ConfigurableOperator, LinearOperator, OpDirection, OpError};
use crate::precision::{MatvecPhase, PrecisionConfig};

/// Fraction of an apply's element traffic attributed to each of the five
/// phases, for one direction of one operator shape. Used to blend
/// per-tier timings into a mixed-configuration cost prediction and to
/// attribute an observed mixed-configuration time back onto its tiers.
#[derive(Clone, Copy, Debug)]
pub struct PhaseWeights {
    w: [f64; 5],
}

impl PhaseWeights {
    /// Equal weight per phase — the fallback when no shape is available.
    pub fn uniform() -> Self {
        PhaseWeights { w: [0.2; 5] }
    }

    /// Traffic-derived weights for a `(nd, nm, nt)` operator applied in
    /// `dir`. Counts are elements moved (reads + writes), which is what
    /// the memory-bound phases scale with; the GEMV term also carries the
    /// `nfreq·nd·nm` operand stream that makes it dominant at scale.
    pub fn for_shape(nd: usize, nm: usize, nt: usize, dir: OpDirection) -> Self {
        let (n_in, n_out) = match dir {
            OpDirection::Forward => (nm, nd),
            OpDirection::Adjoint => (nd, nm),
        };
        let nfreq = (nt + 1) as f64;
        let (n_in, n_out, nt_f) = (n_in as f64, n_out as f64, nt as f64);
        // Pad: read n_in·nt, write n_in·2nt zero-padded series.
        let pad = n_in * nt_f * 3.0;
        // FFT: n_in series of length 2nt, ~log-weighted passes folded
        // into a constant factor; spectrum write n_in·nfreq complex.
        let fft = n_in * (2.0 * nt_f * 2.0 + nfreq * 2.0);
        // SBGEMV: streams the nfreq × (nd·nm) operand once, plus the
        // x̂/ŷ vectors.
        let gemv = nfreq * ((nd * nm) as f64 * 2.0 + (n_in + n_out) * 2.0);
        // IFFT mirrors the FFT on the output side.
        let ifft = n_out * (2.0 * nt_f * 2.0 + nfreq * 2.0);
        // Unpad: read n_out·2nt, write n_out·nt.
        let unpad = n_out * nt_f * 3.0;
        let total = pad + fft + gemv + ifft + unpad;
        if total <= 0.0 || total.is_nan() {
            return PhaseWeights::uniform();
        }
        PhaseWeights { w: [pad / total, fft / total, gemv / total, ifft / total, unpad / total] }
    }

    /// Weight of one phase; the five weights sum to 1.
    pub fn phase(&self, p: MatvecPhase) -> f64 {
        self.w[p as usize]
    }

    /// Sum of the weights of the phases `cfg` runs in tier `p`.
    pub fn tier_share(&self, cfg: PrecisionConfig, p: Precision) -> f64 {
        MatvecPhase::ALL.iter().filter(|&&ph| cfg.phase(ph) == p).map(|&ph| self.phase(ph)).sum()
    }
}

/// Smoothing factor for the EMA refinement of tier timings.
const CALIBRATION_ALPHA: f64 = 0.3;

/// Measured seconds-per-apply of each precision tier, per direction —
/// the autotuner's live cost table.
///
/// A tier is *seeded* by timing one warm apply under that tier's uniform
/// configuration ([`calibrate_tier`] / [`measure_apply_seconds`]) and
/// *refined* by [`observe`](TierCalibration::observe) whenever a later
/// apply under any configuration is timed: the observed/predicted ratio
/// is folded back onto the participating tiers in proportion to their
/// [`PhaseWeights`] share, which reduces to a classic EMA for uniform
/// configurations.
#[derive(Clone, Debug, Default)]
pub struct TierCalibration {
    /// `times[dir][tier]` in seconds; `None` until seeded.
    times: [[Option<f64>; 4]; 2],
}

fn dir_idx(dir: OpDirection) -> usize {
    match dir {
        OpDirection::Forward => 0,
        OpDirection::Adjoint => 1,
    }
}

fn tier_idx(p: Precision) -> usize {
    match p {
        Precision::Half => 0,
        Precision::BFloat16 => 1,
        Precision::Single => 2,
        Precision::Double => 3,
    }
}

impl TierCalibration {
    /// Empty table; every tier calibrates lazily on first need.
    pub fn new() -> Self {
        TierCalibration::default()
    }

    /// Seconds per apply of tier `p` in `dir`, if seeded.
    pub fn tier_seconds(&self, dir: OpDirection, p: Precision) -> Option<f64> {
        self.times[dir_idx(dir)][tier_idx(p)]
    }

    /// Has tier `p` been timed for `dir` yet?
    pub fn is_calibrated(&self, dir: OpDirection, p: Precision) -> bool {
        self.tier_seconds(dir, p).is_some()
    }

    /// Seed or EMA-refine one tier's timing with a fresh uniform-config
    /// measurement.
    pub fn record(&mut self, dir: OpDirection, p: Precision, seconds: f64) {
        if !(seconds.is_finite() && seconds > 0.0) {
            return;
        }
        let slot = &mut self.times[dir_idx(dir)][tier_idx(p)];
        *slot = Some(match *slot {
            None => seconds,
            Some(t) => (1.0 - CALIBRATION_ALPHA) * t + CALIBRATION_ALPHA * seconds,
        });
    }

    /// Predicted seconds for one apply of `cfg` in `dir`: the per-tier
    /// timings blended by each tier's traffic share. `None` until every
    /// tier `cfg` uses is seeded.
    pub fn predict(
        &self,
        cfg: PrecisionConfig,
        dir: OpDirection,
        weights: &PhaseWeights,
    ) -> Option<f64> {
        let mut cost = 0.0;
        for &ph in MatvecPhase::ALL.iter() {
            cost += weights.phase(ph) * self.tier_seconds(dir, cfg.phase(ph))?;
        }
        Some(cost)
    }

    /// Fold an observed apply time of `cfg` back onto its tiers: each
    /// participating tier moves toward the observed/predicted ratio in
    /// proportion to its traffic share. For a uniform configuration this
    /// is exactly [`record`](TierCalibration::record)'s EMA; for a mixed
    /// one it distributes the correction without letting a tier that
    /// contributed 2% of the traffic absorb the whole surprise.
    pub fn observe(
        &mut self,
        cfg: PrecisionConfig,
        dir: OpDirection,
        weights: &PhaseWeights,
        seconds: f64,
    ) {
        if !(seconds.is_finite() && seconds > 0.0) {
            return;
        }
        let Some(predicted) = self.predict(cfg, dir, weights) else { return };
        if predicted <= 0.0 || predicted.is_nan() {
            return;
        }
        let ratio = seconds / predicted;
        for &p in Precision::ALL.iter() {
            let share = weights.tier_share(cfg, p);
            if share == 0.0 {
                continue;
            }
            let slot = &mut self.times[dir_idx(dir)][tier_idx(p)];
            if let Some(t) = *slot {
                let a = CALIBRATION_ALPHA * share;
                *slot = Some(t * ((1.0 - a) + a * ratio));
            }
        }
    }
}

/// Time one apply of `op` in `dir` (seconds), with correctly-sized
/// buffers and a warm-up application first so plan construction and
/// workspace growth are excluded. Repetitions double until the timed
/// window is long enough to trust (≥ 50 µs) so even tiny operators
/// return a usable number; the reported figure is the *minimum* over
/// three such windows — scheduler preemption and allocator contention
/// only ever add time, so min-of-N converges on the true cost where a
/// single window can rank two tiers backwards under load (the same
/// statistic the bench gates use).
pub fn measure_apply_seconds(
    op: &(impl LinearOperator + ?Sized),
    dir: OpDirection,
) -> Result<f64, OpError> {
    let (in_len, out_len) = op.shape().io_lens(dir);
    let input = vec![1.0; in_len];
    let mut out = vec![0.0; out_len];
    op.apply_into(dir, &input, &mut out)?; // warm-up
    let mut reps = 1usize;
    let mut window = loop {
        let start = Instant::now();
        for _ in 0..reps {
            op.apply_into(dir, &input, &mut out)?;
        }
        let elapsed = start.elapsed().as_secs_f64();
        if elapsed >= 5e-5 || reps >= 1 << 10 {
            break elapsed;
        }
        reps *= 2;
    };
    for _ in 0..2 {
        let start = Instant::now();
        for _ in 0..reps {
            op.apply_into(dir, &input, &mut out)?;
        }
        window = window.min(start.elapsed().as_secs_f64());
    }
    Ok((window / reps as f64).max(1e-12))
}

/// Seed `calib` for tier `p` in `dir` by timing `op` under that tier's
/// uniform configuration. No-op when already seeded. The operator's
/// configuration is restored afterwards, on the error path too.
pub fn calibrate_tier<L: ConfigurableOperator + ?Sized>(
    op: &mut L,
    dir: OpDirection,
    p: Precision,
    calib: &mut TierCalibration,
) -> Result<(), OpError> {
    if calib.is_calibrated(dir, p) {
        return Ok(());
    }
    let restore = op.config();
    op.set_config(PrecisionConfig::from_phases([p; 5]));
    let measured = measure_apply_seconds(op, dir);
    op.set_config(restore);
    calib.record(dir, p, measured?);
    Ok(())
}

/// Every lattice configuration whose Eq. 6 bound is at or under
/// `budget`, paired with its bound. Empty when even all-double misses.
pub fn admissible_configs(budget: f64, params: &BoundParams) -> Vec<(PrecisionConfig, ErrorBound)> {
    PrecisionConfig::all_configs_full()
        .into_iter()
        .filter_map(|cfg| {
            let b = error_bound(cfg, params);
            (b.total <= budget).then_some((cfg, b))
        })
        .collect()
}

/// The distinct precision tiers appearing anywhere in `admissible` —
/// the set that needs calibration before costs can be compared. Tight
/// budgets never list the 16-bit tiers, so they are never timed.
pub fn tiers_needed(admissible: &[(PrecisionConfig, ErrorBound)]) -> Vec<Precision> {
    Precision::ALL
        .into_iter()
        .filter(|&p| {
            admissible.iter().any(|(cfg, _)| MatvecPhase::ALL.iter().any(|&ph| cfg.phase(ph) == p))
        })
        .collect()
}

/// The autotuner's resolved answer: the configuration it installed and
/// the promise it made.
#[derive(Clone, Copy, Debug)]
pub struct AutotuneChoice {
    /// The winning configuration.
    pub config: PrecisionConfig,
    /// Its Eq. 6 bound — the error this choice promises to stay under.
    pub bound: ErrorBound,
    /// The budget the choice was resolved against (`bound.total ≤ budget`).
    pub budget: f64,
    /// Predicted seconds per apply under the calibration at selection
    /// time.
    pub predicted_seconds: f64,
    /// The direction the choice was tuned for.
    pub direction: OpDirection,
}

/// Rank `admissible` by calibrated cost and return the winner.
///
/// Mirrors [`crate::pareto::optimal_for_tolerance`]'s tie discipline:
/// predictions within 1% of the fastest are tied (the calibration is a
/// measurement, not an oracle), and ties break toward the fewest
/// below-double phases, then the lower bound — the most conservative
/// configuration at the same speed. A final lexicographic tie-break on
/// the config string makes selection deterministic under exactly-equal
/// costs.
pub fn select(
    admissible: &[(PrecisionConfig, ErrorBound)],
    dir: OpDirection,
    budget: f64,
    weights: &PhaseWeights,
    calib: &TierCalibration,
) -> Result<AutotuneChoice, OpError> {
    let mut costed = Vec::with_capacity(admissible.len());
    for &(cfg, bound) in admissible {
        let cost = calib
            .predict(cfg, dir, weights)
            .ok_or(OpError::Internal("autotune selection over an uncalibrated tier"))?;
        costed.push((cfg, bound, cost));
    }
    let best = costed
        .iter()
        .map(|&(_, _, c)| c)
        .min_by(f64::total_cmp)
        .ok_or(OpError::Internal("autotune selection over an empty admissible set"))?;
    costed
        .into_iter()
        .filter(|&(_, _, c)| c <= best * 1.01)
        .min_by(|a, b| {
            a.0.narrow_count()
                .cmp(&b.0.narrow_count())
                .then(a.1.total.total_cmp(&b.1.total))
                .then(a.2.total_cmp(&b.2))
                .then(a.0.to_string().cmp(&b.0.to_string()))
        })
        .map(|(config, bound, predicted_seconds)| AutotuneChoice {
            config,
            bound,
            budget,
            predicted_seconds,
            direction: dir,
        })
        .ok_or(OpError::Internal("autotune selection over an empty admissible set"))
}

/// The full autotune pass: validate the budget, prune the lattice by
/// Eq. 6, lazily calibrate exactly the tiers the admissible set uses,
/// and pick the cheapest admissible configuration under the calibrated
/// cost order. Does **not** install the winner — callers that want the
/// config applied use [`ConfigurableOperator::retune`] or the builder's
/// `error_budget`.
///
/// The operator's configuration is restored after the calibration
/// applies (calibration swaps through uniform configurations tier by
/// tier).
pub fn autotune<L: ConfigurableOperator + ?Sized>(
    op: &mut L,
    dir: OpDirection,
    budget: f64,
    params: &BoundParams,
    weights: &PhaseWeights,
    calib: &mut TierCalibration,
) -> Result<AutotuneChoice, OpError> {
    if !(budget.is_finite() && budget > 0.0) {
        return Err(OpError::Config(ConfigError::InvalidBudget { budget }));
    }
    let admissible = admissible_configs(budget, params);
    if admissible.is_empty() {
        let floor = error_bound(PrecisionConfig::all_double(), params).total;
        return Err(OpError::Config(ConfigError::BudgetUnsatisfiable { budget, floor }));
    }
    for p in tiers_needed(&admissible) {
        calibrate_tier(op, dir, p, calib)?;
    }
    select(&admissible, dir, budget, weights, calib)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::BlockToeplitzOperator;
    use crate::pipeline::FftMatvec;
    use fftmatvec_numeric::SplitMix64;

    fn well_conditioned(nd: usize, nm: usize, nt: usize, seed: u64) -> BlockToeplitzOperator {
        // First block ≈ I-padded plus small noise: κ(F̂_k) stays near 1.
        let mut rng = SplitMix64::new(seed);
        let mut col = vec![0.0; nt * nd * nm];
        let mut noise = vec![0.0; nd * nm];
        rng.fill_uniform(&mut noise, -0.05, 0.05);
        for i in 0..nd {
            for k in 0..nm {
                col[i * nm + k] = noise[i * nm + k] + if i == k { 1.0 } else { 0.0 };
            }
        }
        BlockToeplitzOperator::from_first_block_column(nd, nm, nt, &col).unwrap()
    }

    #[test]
    fn phase_weights_sum_to_one_and_gemv_dominates_at_scale() {
        for dir in [OpDirection::Forward, OpDirection::Adjoint] {
            let w = PhaseWeights::for_shape(300, 5000, 1000, dir);
            let sum: f64 = MatvecPhase::ALL.iter().map(|&p| w.phase(p)).sum();
            assert!((sum - 1.0).abs() < 1e-12);
            for &p in MatvecPhase::ALL.iter() {
                assert!(w.phase(p) > 0.0);
            }
            // nfreq·nd·nm dwarfs everything at the paper's scale.
            assert!(w.phase(MatvecPhase::Sbgemv) > 0.9, "{dir}");
        }
        let u = PhaseWeights::uniform();
        assert_eq!(u.phase(MatvecPhase::Pad), 0.2);
        // Tier share: dssdd runs Fft and Sbgemv in single, the rest in
        // double.
        let cfg = PrecisionConfig::optimal_forward();
        let w = PhaseWeights::for_shape(4, 8, 16, OpDirection::Forward);
        let s = w.tier_share(cfg, fftmatvec_numeric::Precision::Single);
        let d = w.tier_share(cfg, fftmatvec_numeric::Precision::Double);
        assert!((s + d - 1.0).abs() < 1e-12);
        assert!((s - w.phase(MatvecPhase::Fft) - w.phase(MatvecPhase::Sbgemv)).abs() < 1e-12);
    }

    #[test]
    fn calibration_seeds_predicts_and_refines() {
        let mut c = TierCalibration::new();
        let w = PhaseWeights::uniform();
        let dir = OpDirection::Forward;
        assert!(!c.is_calibrated(dir, Precision::Single));
        assert!(c.predict(PrecisionConfig::all_single(), dir, &w).is_none());

        c.record(dir, Precision::Single, 1.0);
        c.record(dir, Precision::Double, 2.0);
        // Uniform config predicts exactly its tier time.
        let ps = c.predict(PrecisionConfig::all_single(), dir, &w).unwrap();
        assert!((ps - 1.0).abs() < 1e-12);
        // Mixed dssdd (single on Fft+Sbgemv) under uniform weights:
        // 0.6·t_d + 0.4·t_s.
        let pm = c.predict(PrecisionConfig::optimal_forward(), dir, &w).unwrap();
        assert!((pm - (0.6 * 2.0 + 0.4 * 1.0)).abs() < 1e-12);

        // EMA on repeat record: t ← 0.7·1.0 + 0.3·2.0.
        c.record(dir, Precision::Single, 2.0);
        let t = c.tier_seconds(dir, Precision::Single).unwrap();
        assert!((t - 1.3).abs() < 1e-12);

        // observe() on a uniform config is the same EMA.
        let mut c2 = TierCalibration::new();
        c2.record(dir, Precision::Single, 1.0);
        c2.observe(PrecisionConfig::all_single(), dir, &w, 2.0);
        let t2 = c2.tier_seconds(dir, Precision::Single).unwrap();
        assert!((t2 - 1.3).abs() < 1e-12, "observe must reduce to record's EMA: {t2}");

        // observe() on a mixed config nudges both tiers toward the ratio,
        // weighted by share — and leaves the adjoint table untouched.
        let before_d = c.tier_seconds(dir, Precision::Double).unwrap();
        c.observe(PrecisionConfig::optimal_forward(), dir, &w, 10.0);
        assert!(c.tier_seconds(dir, Precision::Double).unwrap() > before_d);
        assert!(c.tier_seconds(OpDirection::Adjoint, Precision::Double).is_none());

        // Garbage measurements are ignored.
        c.record(dir, Precision::Single, f64::NAN);
        c.record(dir, Precision::Single, -1.0);
        assert!(c.tier_seconds(dir, Precision::Single).unwrap().is_finite());
    }

    #[test]
    fn admissible_set_tightens_with_the_budget() {
        let params = BoundParams::forward(1000, 5000, 1, 1.0);
        // A bf16 GEMV over 5000 terms bounds at ε_b·5000 ≈ 39, so the
        // whole lattice needs a budget in the hundreds to qualify.
        let all = admissible_configs(1e3, &params);
        assert_eq!(all.len(), 1024, "an impossible-to-miss budget admits the whole lattice");
        // ddddd's floor here is ε_d·5000 ≈ 1.1e-12; the next-cheapest
        // config rounds at least one memory op in single (≥ ε_s).
        let tight = admissible_configs(2e-12, &params);
        assert_eq!(tight.len(), 1, "only all-double survives a near-floor budget");
        assert!(tight[0].0.is_all_double());
        let none = admissible_configs(1e-17, &params);
        assert!(none.is_empty());
        // Tight budgets never pull 16-bit tiers into calibration.
        let mid = admissible_configs(1e-6, &params);
        assert!(!mid.is_empty());
        let tiers = tiers_needed(&mid);
        assert!(tiers.contains(&Precision::Double));
        assert!(!tiers.contains(&Precision::Half) && !tiers.contains(&Precision::BFloat16));
    }

    #[test]
    fn select_prefers_cheap_then_conservative() {
        let params = BoundParams::forward(8, 4, 1, 1.0);
        let dir = OpDirection::Forward;
        let w = PhaseWeights::uniform();
        let mut c = TierCalibration::new();
        c.record(dir, Precision::Double, 2.0);
        c.record(dir, Precision::Single, 1.0);

        // Both admissible; single-heavy wins on cost.
        let adm = vec![
            (PrecisionConfig::all_double(), error_bound(PrecisionConfig::all_double(), &params)),
            (PrecisionConfig::all_single(), error_bound(PrecisionConfig::all_single(), &params)),
        ];
        let pick = select(&adm, dir, 1.0, &w, &c).unwrap();
        assert_eq!(pick.config, PrecisionConfig::all_single());
        assert!((pick.predicted_seconds - 1.0).abs() < 1e-12);
        assert_eq!(pick.direction, dir);

        // Equal tier times ⇒ every cost ties ⇒ narrow_count breaks toward
        // the conservative config.
        let mut flat = TierCalibration::new();
        flat.record(dir, Precision::Double, 1.0);
        flat.record(dir, Precision::Single, 1.0);
        let pick = select(&adm, dir, 1.0, &w, &flat).unwrap();
        assert!(pick.config.is_all_double(), "tie must break conservative, got {}", pick.config);

        // An uncalibrated tier in the set is an internal error, not a
        // silent skip.
        let empty = TierCalibration::new();
        assert!(select(&adm, dir, 1.0, &w, &empty).is_err());
    }

    #[test]
    fn budget_1e6_selects_the_paper_config_or_one_dominating_it() {
        // The acceptance shape of the autotuner: at a 1e-6 budget on a
        // κ ≈ 1 operator small enough that the paper's mixed configs
        // clear the Eq. 6 bound, the winner must be `dssdd` (forward) /
        // `ddssd` (adjoint) — or a configuration that *dominates* it:
        // admissible and no slower under the calibrated cost order.
        // Calibration is synthetic (narrower tier = faster, the natural
        // hardware order) so the test is machine-independent.
        let (nd, nm, nt) = (2usize, 2usize, 8usize);
        let mut calib = TierCalibration::new();
        for dir in [OpDirection::Forward, OpDirection::Adjoint] {
            for (p, t) in [
                (Precision::Half, 1.0),
                (Precision::BFloat16, 1.2),
                (Precision::Single, 2.0),
                (Precision::Double, 4.0),
            ] {
                calib.record(dir, p, t);
            }
        }
        let budget = 1e-6;
        for (dir, paper) in [
            (OpDirection::Forward, PrecisionConfig::optimal_forward()),
            (OpDirection::Adjoint, PrecisionConfig::optimal_adjoint()),
        ] {
            let params = BoundParams::for_direction(dir, nt, nd, nm, 1, 1, 1.0);
            let weights = PhaseWeights::for_shape(nd, nm, nt, dir);
            let admissible = admissible_configs(budget, &params);
            assert!(
                admissible.iter().any(|&(c, _)| c == paper),
                "{paper} must be admissible at 1e-6 for {dir}"
            );
            let choice = select(&admissible, dir, budget, &weights, &calib).unwrap();
            assert!(choice.bound.total <= budget);
            let paper_cost = calib.predict(paper, dir, &weights).unwrap();
            assert!(
                choice.config == paper || choice.predicted_seconds <= paper_cost * 1.01,
                "{dir}: picked {} at {:.3}, which neither is {paper} nor dominates \
                 its cost {paper_cost:.3}",
                choice.config,
                choice.predicted_seconds
            );
        }
    }

    #[test]
    fn autotune_meets_budget_and_validates_inputs() {
        let (nd, nm, nt) = (4usize, 4usize, 8usize);
        let op = well_conditioned(nd, nm, nt, 7);
        let kappa = crate::error_analysis::condition_estimate(&op, 1);
        let mut mv = FftMatvec::builder(op).build().unwrap();
        let weights = PhaseWeights::for_shape(nd, nm, nt, OpDirection::Forward);
        let mut calib = TierCalibration::new();
        let params = BoundParams::forward(nt, nm, 1, kappa);

        // Bad budgets are typed config errors.
        for bad in [f64::NAN, 0.0, -1e-6, f64::INFINITY] {
            let e = autotune(&mut mv, OpDirection::Forward, bad, &params, &weights, &mut calib)
                .unwrap_err();
            assert!(matches!(e, OpError::Config(ConfigError::InvalidBudget { .. })), "{bad}");
        }
        // An unsatisfiable budget names the floor.
        let e = autotune(&mut mv, OpDirection::Forward, 1e-17, &params, &weights, &mut calib)
            .unwrap_err();
        match e {
            OpError::Config(ConfigError::BudgetUnsatisfiable { floor, .. }) => {
                assert!(floor > 1e-17 && floor < 1e-10);
            }
            other => panic!("expected BudgetUnsatisfiable, got {other:?}"),
        }

        // A satisfiable budget resolves, promises bound ≤ budget, and the
        // measured error honors the promise.
        let budget = 1e-6;
        let choice =
            autotune(&mut mv, OpDirection::Forward, budget, &params, &weights, &mut calib).unwrap();
        assert!(choice.bound.total <= budget);
        assert!(choice.predicted_seconds > 0.0);
        // retune() installs it through the trait.
        let installed = {
            let op: &mut dyn ConfigurableOperator = &mut mv;
            op.retune(OpDirection::Forward, budget, &params, &weights, &mut calib).unwrap()
        };
        assert_eq!(installed.config, choice.config);
        assert_eq!(mv.config(), choice.config);

        let mut rng = SplitMix64::new(5);
        let mut m = vec![0.0; nm * nt];
        rng.fill_uniform_stuffed(&mut m, -1.0, 1.0);
        let measured =
            crate::pareto::error_sweep(&mut mv, OpDirection::Forward, &[choice.config], &m)
                .unwrap()[0];
        assert!(
            measured <= budget,
            "measured {measured} must honor the budget {budget} (config {})",
            choice.config
        );

        // Calibration persisted: the tiers the admissible set needed are
        // seeded for this direction, and a re-tune does no fresh timing
        // (is_calibrated short-circuits) yet returns a winner again.
        assert!(calib.is_calibrated(OpDirection::Forward, Precision::Double));
        let again =
            autotune(&mut mv, OpDirection::Forward, budget, &params, &weights, &mut calib).unwrap();
        assert!(again.bound.total <= budget);
    }

    #[test]
    fn calibration_restores_config_and_is_lazy() {
        let (nd, nm, nt) = (2usize, 4usize, 8usize);
        let op = well_conditioned(nd, nm, nt, 11);
        let mut mv =
            FftMatvec::builder(op).precision(PrecisionConfig::optimal_forward()).build().unwrap();
        let mut calib = TierCalibration::new();
        calibrate_tier(&mut mv, OpDirection::Adjoint, Precision::Single, &mut calib).unwrap();
        assert_eq!(mv.config(), PrecisionConfig::optimal_forward(), "config restored");
        assert!(calib.is_calibrated(OpDirection::Adjoint, Precision::Single));
        assert!(!calib.is_calibrated(OpDirection::Forward, Precision::Single), "per-direction");
        let t = calib.tier_seconds(OpDirection::Adjoint, Precision::Single).unwrap();
        // Re-calibration is a no-op (same seeded value).
        calibrate_tier(&mut mv, OpDirection::Adjoint, Precision::Single, &mut calib).unwrap();
        assert_eq!(calib.tier_seconds(OpDirection::Adjoint, Precision::Single), Some(t));
    }
}
