//! The five-phase FFTMatvec pipeline with dynamic mixed precision.
//!
//! Both matvec directions share the same pipeline skeleton:
//!
//! ```text
//! F :  d = Unpad( IFFT( F̂ ·  FFT(Pad(m)) ) )      (NoTrans GEMV)
//! F*:  m = Unpad( IFFT( F̂ᴴ · FFT(Pad(d)) ) )      (ConjTrans GEMV)
//! ```
//!
//! The working precision is tracked through the phases: each phase
//! computes in its configured precision, casts are fused into the
//! adjacent memory operations ([`crate::layout`]), and the input/output
//! vectors are always double (Section 3.2 — downstream inverse-problem
//! computations need FP64 endpoints).
//!
//! Construction goes through [`FftMatvec::builder`]; application goes
//! through the [`LinearOperator`] trait. The `_into` paths draw every
//! intermediate buffer from a pooled workspace (and FFT scratch from the
//! engines' shared `ScratchArena`s), so repeated applies under a fixed
//! configuration perform **zero heap allocations after warm-up** —
//! verified by the counting-allocator conformance suite.

use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};

use fftmatvec_backend::{BackendError, BackendKind, BatchFft, DeviceBackend};
use fftmatvec_blas::{sbgemv, BatchGeometry, GemvOp};
use fftmatvec_numeric::{Complex, ComplexBuffer, Precision, RealBuffer};
#[cfg(feature = "parallel")]
use rayon::prelude::*;

use crate::autotune::{AutotuneChoice, PhaseWeights, TierCalibration};
use crate::error_analysis::{condition_estimate, BoundParams};
use crate::layout;
use crate::linop::{
    check_apply, check_batch, ConfigError, ConfigurableOperator, LinearOperator, OpDirection,
    OpError, OpShape,
};
use crate::operator::BlockToeplitzOperator;
use crate::precision::{MatvecPhase, PrecisionConfig};

/// Execution backend a built pipeline computes on — re-exported from
/// `fftmatvec-backend` under the name this crate has always used. `Cpu`
/// executes for real (software-emulated 16-bit tiers), `Simulated` adds
/// modeled device timings, `Portability` is the GPU landing pad.
pub use fftmatvec_backend::BackendKind as PipelineBackend;

/// Per-tier batched real-FFT engines, planned through the pipeline's
/// [`DeviceBackend`], built lazily and retained only for the tiers the
/// current configuration's FFT/IFFT phases actually use.
///
/// A configuration switch keeps every engine whose tier is still in use
/// (its plan handle *and* its warmed scratch arena survive) and drops
/// only the engines whose tier left the configuration — the fix for the
/// drop-everything reconfigure this replaces.
struct TierEngines {
    n2: usize,
    h: OnceLock<Arc<dyn BatchFft>>,
    b: OnceLock<Arc<dyn BatchFft>>,
    s: OnceLock<Arc<dyn BatchFft>>,
    d: OnceLock<Arc<dyn BatchFft>>,
}

impl TierEngines {
    fn new(n2: usize) -> Self {
        TierEngines {
            n2,
            h: OnceLock::new(),
            b: OnceLock::new(),
            s: OnceLock::new(),
            d: OnceLock::new(),
        }
    }

    /// Does `cfg` run an FFT phase in tier `p`? Only phases 2 and 4 own
    /// transform engines.
    fn uses(cfg: PrecisionConfig, p: Precision) -> bool {
        cfg.phase(MatvecPhase::Fft) == p || cfg.phase(MatvecPhase::Ifft) == p
    }

    fn slot(&self, p: Precision) -> &OnceLock<Arc<dyn BatchFft>> {
        match p {
            Precision::Half => &self.h,
            Precision::BFloat16 => &self.b,
            Precision::Single => &self.s,
            Precision::Double => &self.d,
        }
    }

    /// The resident engine for tier `p`, planning one through `device` on
    /// first use. On a plan race the first stored engine wins (same
    /// semantics as `get_or_init`; the spare handle is dropped).
    fn engine(
        &self,
        device: &dyn DeviceBackend,
        p: Precision,
    ) -> Result<&Arc<dyn BatchFft>, BackendError> {
        let slot = self.slot(p);
        if let Some(engine) = slot.get() {
            return Ok(engine);
        }
        let built = device.real_fft(p, self.n2)?;
        Ok(slot.get_or_init(|| built))
    }

    /// Eagerly build the engines `cfg` needs (plans come from the
    /// process-wide cache, so this is cheap and mostly a cache lookup).
    /// Fails typed when the backend cannot plan — the portability stub's
    /// `Unavailable` surfaces here at build time.
    fn warm(&self, device: &dyn DeviceBackend, cfg: PrecisionConfig) -> Result<(), BackendError> {
        for p in [Precision::Half, Precision::BFloat16, Precision::Single, Precision::Double] {
            if Self::uses(cfg, p) {
                self.engine(device, p)?;
            }
        }
        Ok(())
    }

    /// Drop engines whose tier `cfg` no longer uses; keep the rest.
    fn retain(&mut self, cfg: PrecisionConfig) {
        if !Self::uses(cfg, Precision::Half) {
            self.h.take();
        }
        if !Self::uses(cfg, Precision::BFloat16) {
            self.b.take();
        }
        if !Self::uses(cfg, Precision::Single) {
            self.s.take();
        }
        if !Self::uses(cfg, Precision::Double) {
            self.d.take();
        }
    }

    fn scratch_pooled(&self, p: Precision) -> Option<usize> {
        self.slot(p).get().map(|e| e.scratch_pooled())
    }
}

/// One apply's worth of intermediate buffers. Every field is reset (not
/// reallocated) each apply as long as the tier/shape it held last time
/// still matches — which is always the case under a fixed configuration.
/// The `id` is pool-unique and backs the checkout ledger below.
struct Workspace {
    id: u64,
    padded: RealBuffer,
    casted: RealBuffer,
    spectrum: ComplexBuffer,
    xhat: ComplexBuffer,
    yhat: ComplexBuffer,
    dspec: ComplexBuffer,
    time: RealBuffer,
}

impl Workspace {
    /// All-empty workspace; `Vec::new()` does not allocate.
    fn empty(id: u64) -> Self {
        Workspace {
            id,
            padded: RealBuffer::F64(Vec::new()),
            casted: RealBuffer::F64(Vec::new()),
            spectrum: ComplexBuffer::C64(Vec::new()),
            xhat: ComplexBuffer::C64(Vec::new()),
            yhat: ComplexBuffer::C64(Vec::new()),
            dspec: ComplexBuffer::C64(Vec::new()),
            time: RealBuffer::F64(Vec::new()),
        }
    }
}

/// Most workspaces a pool parks between applies. A serving registry can
/// point many concurrent batch windows at one shared `FftMatvec`; each
/// window transiently checks out one workspace per executing worker, and
/// without a cap the pool would permanently retain that burst-peak
/// footprint. Sized to comfortably cover the machine's worker
/// concurrency (the steady-state checkout count) while letting bursts
/// free their excess.
pub fn workspace_retention_cap() -> usize {
    // Computed once: `available_parallelism` reads procfs/cgroup state on
    // Linux, which allocates — and this runs on the apply hot path (every
    // workspace return), which is contractually allocation-free.
    static CAP: OnceLock<usize> = OnceLock::new();
    *CAP.get_or_init(|| {
        let hw = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        (2 * hw).max(8)
    })
}

/// Bookkeeping behind one [`WorkspacePool`] mutex.
struct PoolLedger {
    /// Workspaces parked between applies, at most
    /// [`workspace_retention_cap`] of them.
    parked: Vec<Workspace>,
    /// Ids currently checked out. Small (≈ worker concurrency), so a
    /// linear scan beats a hash set.
    checked_out: Vec<u64>,
    /// Next fresh workspace id.
    next_id: u64,
    /// High-water mark of concurrent checkouts (diagnostic).
    peak_out: usize,
}

/// Pool of [`Workspace`]s, mirroring the FFT `ScratchArena`: one buffer
/// set per concurrently running worker, a single reused set when serial.
///
/// Hardened for shared-operator serving, where one `FftMatvec` is driven
/// by many concurrent batch windows:
///
/// * **Checkout ledger** — every workspace carries a pool-unique id,
///   recorded while it is out. A guard returning a workspace the ledger
///   does not list (the only way two batches could ever alias one
///   workspace's buffers) is a loud panic instead of silent data
///   corruption.
/// * **Bounded retention** — returned workspaces are parked only up to
///   [`workspace_retention_cap`]; the rest free their buffers, so a
///   burst of concurrent windows cannot permanently pin its peak
///   footprint.
struct WorkspacePool {
    reuse: bool,
    state: Mutex<PoolLedger>,
}

impl WorkspacePool {
    fn new(reuse: bool) -> Self {
        WorkspacePool {
            reuse,
            state: Mutex::new(PoolLedger {
                parked: Vec::new(),
                checked_out: Vec::new(),
                next_id: 0,
                peak_out: 0,
            }),
        }
    }

    fn lock(&self) -> MutexGuard<'_, PoolLedger> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn checkout(&self) -> PooledWorkspace<'_> {
        let mut st = self.lock();
        let ws = match st.parked.pop() {
            Some(ws) => ws,
            None => {
                let id = st.next_id;
                st.next_id += 1;
                Workspace::empty(id)
            }
        };
        st.checked_out.push(ws.id);
        st.peak_out = st.peak_out.max(st.checked_out.len());
        PooledWorkspace { pool: self, ws: Some(ws) }
    }

    fn pooled(&self) -> usize {
        self.lock().parked.len()
    }

    fn in_flight(&self) -> usize {
        self.lock().checked_out.len()
    }

    fn peak_in_flight(&self) -> usize {
        self.lock().peak_out
    }
}

struct PooledWorkspace<'a> {
    pool: &'a WorkspacePool,
    /// Always `Some` until `drop` takes it back.
    ws: Option<Workspace>,
}

impl PooledWorkspace<'_> {
    #[inline]
    fn ws(&mut self) -> &mut Workspace {
        self.ws.as_mut().expect("workspace held until drop")
    }
}

impl Drop for PooledWorkspace<'_> {
    fn drop(&mut self) {
        let ws = self.ws.take().expect("workspace held until drop");
        let mut st = self.pool.lock();
        let idx = st
            .checked_out
            .iter()
            .position(|&id| id == ws.id)
            .expect("workspace returned twice or to a foreign pool: aliased checkout");
        st.checked_out.swap_remove(idx);
        if self.pool.reuse && st.parked.len() < workspace_retention_cap() {
            st.parked.push(ws);
        }
    }
}

/// Fluent builder for [`FftMatvec`] — the only construction path.
///
/// ```
/// # use fftmatvec_core::{BlockToeplitzOperator, FftMatvec, PrecisionConfig};
/// # let op = BlockToeplitzOperator::from_first_block_column(1, 1, 2, &[1.0, 0.5]).unwrap();
/// let mv = FftMatvec::builder(op)
///     .precision(PrecisionConfig::optimal_forward())
///     .workspace_reuse(true)
///     .build()
///     .unwrap();
/// # let _ = mv;
/// ```
pub struct FftMatvecBuilder {
    op: Arc<BlockToeplitzOperator>,
    cfg: PrecisionConfig,
    backend: Option<PipelineBackend>,
    workspace_reuse: bool,
    budget: Option<(OpDirection, f64)>,
    kappa: Option<f64>,
}

impl FftMatvecBuilder {
    fn new(op: Arc<BlockToeplitzOperator>) -> Self {
        FftMatvecBuilder {
            op,
            cfg: PrecisionConfig::all_double(),
            backend: None,
            workspace_reuse: true,
            budget: None,
            kappa: None,
        }
    }

    /// Five-phase precision configuration (default `ddddd`).
    pub fn precision(mut self, cfg: PrecisionConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Resolve the precision configuration from a **forward-direction
    /// error budget** at build time instead of fixing it with
    /// [`precision`](Self::precision): the built pipeline autotunes to
    /// the cheapest configuration whose Eq. 6 bound is at or under
    /// `budget` (see [`crate::autotune`]), and records the bound it
    /// promised ([`FftMatvec::autotuned`]). Overrides any
    /// `precision(..)` setting.
    pub fn error_budget(self, budget: f64) -> Self {
        self.error_budget_for(OpDirection::Forward, budget)
    }

    /// [`error_budget`](Self::error_budget) for an explicit direction —
    /// adjoint-heavy callers (Bayesian inversion applies `F*` as often
    /// as `F`) tune against the F* side of Eq. 6.
    pub fn error_budget_for(mut self, dir: OpDirection, budget: f64) -> Self {
        self.budget = Some((dir, budget));
        self
    }

    /// Supply a known condition number `κ(F̂)` for the budget pruning
    /// instead of estimating one at build time (the estimate runs power
    /// iterations per sampled frequency — cheap, but a caller that
    /// already knows its operator can skip it).
    pub fn kappa_override(mut self, kappa: f64) -> Self {
        self.kappa = Some(kappa);
        self
    }

    /// Execution backend. An explicit choice here wins over the
    /// `FFTMATVEC_BACKEND` environment override; when neither is set the
    /// pipeline runs on [`PipelineBackend::Cpu`].
    pub fn backend(mut self, backend: PipelineBackend) -> Self {
        self.backend = Some(backend);
        self
    }

    /// Keep intermediate buffers pooled between applies (default `true`).
    /// Disable to trade the steady-state allocations back for a minimal
    /// resident footprint between calls.
    pub fn workspace_reuse(mut self, reuse: bool) -> Self {
        self.workspace_reuse = reuse;
        self
    }

    /// Build the pipeline: resolves the per-tier FFT engines the
    /// configuration needs through the process-wide plan cache and
    /// preallocates nothing else — workspaces fill on first apply.
    ///
    /// With an [`error_budget`](Self::error_budget) set, building also
    /// runs the autotune pass: estimate `κ` (unless
    /// [`kappa_override`](Self::kappa_override) supplied one), prune the
    /// lattice by Eq. 6, time the admissible tiers, and install the
    /// cheapest admissible configuration. An unsatisfiable or invalid
    /// budget fails construction with the corresponding
    /// [`ConfigError`].
    pub fn build(self) -> Result<FftMatvec, ConfigError> {
        let kind = BackendKind::resolve(self.backend)?;
        let device = fftmatvec_backend::create(kind)?;
        let engines = TierEngines::new(2 * self.op.nt());
        engines.warm(device.as_ref(), self.cfg)?;
        let mut mv = FftMatvec {
            op: self.op,
            cfg: self.cfg,
            backend: kind,
            device,
            engines,
            workspace: WorkspacePool::new(self.workspace_reuse),
            autotune: None,
        };
        if let Some((dir, budget)) = self.budget {
            let kappa = self
                .kappa
                .unwrap_or_else(|| condition_estimate(&mv.op, default_kappa_stride(mv.op.nfreq())));
            mv.resolve_budget(dir, budget, kappa).map_err(|e| match e {
                OpError::Config(c) => c,
                other => ConfigError::Autotune(other.to_string()),
            })?;
        }
        Ok(mv)
    }
}

/// Frequency stride for build-time κ estimation: scan everything up to
/// 32 frequencies, subsample beyond that so construction stays cheap at
/// large `N_t`.
fn default_kappa_stride(nfreq: usize) -> usize {
    (nfreq / 32).max(1)
}

/// Flat batches above this many `f64` elements split across the pool.
#[cfg(feature = "parallel")]
const MANY_PAR_THRESHOLD: usize = 1 << 12;

/// Live autotuning state a budget-built pipeline carries: the `κ`
/// estimate and tier calibration persist so later
/// [`FftMatvec::retune_budget`] calls refine timings instead of
/// restarting them.
struct AutotuneState {
    kappa: f64,
    calib: TierCalibration,
    last: Option<AutotuneChoice>,
}

/// A configured FFTMatvec ready to apply `F` and `F*` through the
/// [`LinearOperator`] trait.
///
/// The operator is held behind an `Arc`, so several pipelines — e.g. the
/// per-configuration variants a budget-routing service keeps — share one
/// frequency-domain setup (`F̂` and its lazily-cached narrow copies)
/// instead of duplicating it.
pub struct FftMatvec {
    op: Arc<BlockToeplitzOperator>,
    cfg: PrecisionConfig,
    backend: PipelineBackend,
    device: Arc<dyn DeviceBackend>,
    engines: TierEngines,
    workspace: WorkspacePool,
    autotune: Option<Box<AutotuneState>>,
}

impl std::fmt::Debug for FftMatvec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FftMatvec")
            .field("nd", &self.op.nd())
            .field("nm", &self.op.nm())
            .field("nt", &self.op.nt())
            .field("config", &self.cfg.to_string())
            .field("backend", &self.backend)
            .finish_non_exhaustive()
    }
}

impl FftMatvec {
    /// Start building a pipeline around `op`. The batched FFT engines for
    /// the configured tiers resolve through the process-wide plan cache
    /// (`fftmatvec_fft::cache`), so every `FftMatvec` of the same `N_t` —
    /// including the per-rank pipelines of the distributed matvec —
    /// shares one set of twiddle tables per precision.
    pub fn builder(op: BlockToeplitzOperator) -> FftMatvecBuilder {
        FftMatvecBuilder::new(Arc::new(op))
    }

    /// [`builder`](Self::builder) over an already-shared operator: the
    /// new pipeline reuses `op`'s frequency-domain setup (including any
    /// narrow `F̂` copies already materialized) instead of cloning it —
    /// how a budget-routing service builds per-configuration variants of
    /// one registered operator.
    pub fn builder_arc(op: Arc<BlockToeplitzOperator>) -> FftMatvecBuilder {
        FftMatvecBuilder::new(op)
    }

    /// The shared double-precision FFT plan handle for this problem size.
    /// Handles for the same `N_t` compare pointer-equal across pipelines —
    /// useful for asserting (and testing) that plan construction is
    /// amortized. Returns the resident engine's own handle when the
    /// configuration has a double FFT tier (so the assertion really
    /// exercises the engine's plan, not just two cache lookups), and
    /// falls back to the process-wide cache otherwise.
    pub fn fft64_plan_handle(&self) -> fftmatvec_fft::RealPlanHandle<f64> {
        match self.engines.d.get().and_then(|e| e.plan_handle_f64()) {
            Some(handle) => handle,
            None => fftmatvec_fft::cache::real_plan::<f64>(2 * self.op.nt()),
        }
    }

    /// Scratch buffers pooled inside the FFT engine of tier `p`, or
    /// `None` when no engine for that tier is resident. Diagnostic: a
    /// surviving pool across [`FftMatvec::set_config`] proves the engine
    /// was kept rather than rebuilt.
    pub fn fft_scratch_pooled(&self, p: Precision) -> Option<usize> {
        self.engines.scratch_pooled(p)
    }

    /// Workspaces currently parked in the pipeline's pool (diagnostic).
    /// Bounded by [`workspace_retention_cap`] however many concurrent
    /// batch windows have driven this pipeline.
    pub fn workspaces_pooled(&self) -> usize {
        self.workspace.pooled()
    }

    /// Workspaces currently checked out of the pool (diagnostic): the
    /// number of applies executing on this pipeline right now.
    pub fn workspaces_in_flight(&self) -> usize {
        self.workspace.in_flight()
    }

    /// High-water mark of concurrent workspace checkouts over this
    /// pipeline's lifetime (diagnostic for concurrency stress tests).
    pub fn workspaces_peak_in_flight(&self) -> usize {
        self.workspace.peak_in_flight()
    }

    /// The wrapped operator.
    pub fn operator(&self) -> &BlockToeplitzOperator {
        &self.op
    }

    /// A shared handle to the wrapped operator, for building further
    /// pipelines over the same setup ([`FftMatvec::builder_arc`]).
    pub fn operator_shared(&self) -> Arc<BlockToeplitzOperator> {
        Arc::clone(&self.op)
    }

    /// The autotuner's latest resolution for this pipeline — the
    /// installed configuration, the Eq. 6 bound it promised, and the
    /// budget it was resolved against. `None` unless the pipeline was
    /// built with [`FftMatvecBuilder::error_budget`] or retuned via
    /// [`retune_budget`](Self::retune_budget).
    pub fn autotuned(&self) -> Option<&AutotuneChoice> {
        self.autotune.as_ref().and_then(|s| s.last.as_ref())
    }

    /// Re-resolve this pipeline's configuration for a new error budget
    /// (or direction), reusing the `κ` estimate and tier calibration
    /// from any previous budget resolution — repeat retunes refine the
    /// timings by EMA rather than re-measuring from scratch. On success
    /// the winning configuration is installed through the
    /// engine-retention path ([`set_config`](Self::set_config)); on
    /// error the current configuration stays.
    pub fn retune_budget(
        &mut self,
        dir: OpDirection,
        budget: f64,
    ) -> Result<AutotuneChoice, OpError> {
        let kappa = match &self.autotune {
            Some(state) => state.kappa,
            None => condition_estimate(&self.op, default_kappa_stride(self.op.nfreq())),
        };
        self.resolve_budget(dir, budget, kappa)?;
        Ok(*self.autotuned().expect("resolve_budget stores the choice on success"))
    }

    /// Shared budget-resolution path for `build()` and `retune_budget`:
    /// runs the autotune pass with this pipeline's persistent
    /// calibration and installs the winner. The autotune state is taken
    /// out for the duration so the calibration applies can borrow `self`
    /// mutably.
    fn resolve_budget(&mut self, dir: OpDirection, budget: f64, kappa: f64) -> Result<(), OpError> {
        let (nd, nm, nt) = (self.op.nd(), self.op.nm(), self.op.nt());
        let taken = self.autotune.take();
        let mut state = taken.unwrap_or_else(|| {
            Box::new(AutotuneState { kappa, calib: TierCalibration::new(), last: None })
        });
        state.kappa = kappa;
        let params = BoundParams::for_direction(dir, nt, nd, nm, 1, 1, kappa);
        let weights = PhaseWeights::for_shape(nd, nm, nt, dir);
        let result =
            crate::autotune::autotune(self, dir, budget, &params, &weights, &mut state.calib);
        let result = match result {
            Ok(choice) => {
                self.set_config(choice.config);
                state.last = Some(choice);
                Ok(())
            }
            Err(e) => Err(e),
        };
        self.autotune = Some(state);
        result
    }

    /// Current precision configuration.
    pub fn config(&self) -> PrecisionConfig {
        self.cfg
    }

    /// The execution backend this pipeline was built for.
    pub fn backend(&self) -> PipelineBackend {
        self.backend
    }

    /// The device backend handle the pipeline dispatches through —
    /// transfer accounting ([`fftmatvec_backend::TransferStats`]) and,
    /// for the simulated device, modeled phase timings hang off it.
    pub fn device(&self) -> &Arc<dyn DeviceBackend> {
        &self.device
    }

    /// Swap the precision configuration at runtime (the paper's dynamic
    /// reconfiguration — no operator rebuild). Only the FFT engines whose
    /// tier actually changed are touched: engines still used by the new
    /// configuration survive with their warmed scratch arenas, engines
    /// whose tier left the configuration are dropped, and newly needed
    /// tiers resolve through the plan cache.
    pub fn set_config(&mut self, cfg: PrecisionConfig) {
        self.engines.retain(cfg);
        self.cfg = cfg;
        // Best-effort warm: a backend that cannot plan here (portability
        // stub) surfaces the same typed error on the next apply instead.
        let _ = self.engines.warm(self.device.as_ref(), cfg);
    }

    /// Recover the operator. When other pipelines still share it
    /// (built via [`builder_arc`](Self::builder_arc)), this deep-copies
    /// the double-precision setup rather than disturbing them.
    pub fn into_operator(self) -> BlockToeplitzOperator {
        Arc::try_unwrap(self.op).unwrap_or_else(|shared| (*shared).clone())
    }

    /// One full five-phase pipeline pass, all intermediates drawn from
    /// `ws`. Caller has validated `input`/`out` lengths.
    fn run_pipeline(
        &self,
        input: &[f64],
        out: &mut [f64],
        gemv_op: GemvOp,
        ws: &mut Workspace,
    ) -> Result<(), OpError> {
        let (nd, nm, nt, nfreq) = (self.op.nd(), self.op.nm(), self.op.nt(), self.op.nfreq());
        // Series counts on each side of the GEMV.
        let (n_in, n_out) = match gemv_op {
            GemvOp::NoTrans => (nm, nd),
            _ => (nd, nm),
        };
        let Workspace { padded, casted, spectrum, xhat, yhat, dspec, time, .. } = ws;

        // Phase 1 — broadcast + zero-pad (TOSI → SOTI), in cfg[Pad]. The
        // input crosses the host→device boundary here; the ledger books
        // it (the CPU backends alias host memory, so no copy happens).
        self.device.record_upload(std::mem::size_of_val(input));
        let p_pad = self.cfg.phase(MatvecPhase::Pad);
        layout::pad_input_into(input, n_in, nt, p_pad, padded);

        // Phase 2 — batched R2C FFT in cfg[Fft]; the cast (if any) is
        // fused with the pad output.
        let p_fft = self.cfg.phase(MatvecPhase::Fft);
        let fft_in: &RealBuffer = if p_fft == p_pad {
            padded
        } else {
            self.device.cast_real(padded, p_fft, casted)?;
            casted
        };
        spectrum.reset_for_overwrite(p_fft, n_in * nfreq);
        self.engines.engine(self.device.as_ref(), p_fft)?.forward(fft_in, spectrum)?;

        // Phase 3 — SOTI→TOSI reorder (fused cast), then the strided
        // batched GEMV in cfg[Sbgemv].
        let p_gemv = self.cfg.phase(MatvecPhase::Sbgemv);
        layout::spectrum_to_batch_into(spectrum, n_in, nfreq, p_gemv, xhat);
        yhat.reset_for_overwrite(p_gemv, n_out * nfreq);
        let g = BatchGeometry::packed(nd, nm, gemv_op, nfreq);
        match (&*xhat, &mut *yhat) {
            (ComplexBuffer::C16(x), ComplexBuffer::C16(y)) => {
                sbgemv(gemv_op, Complex::one(), self.op.fhat16(), x, Complex::zero(), y, &g);
            }
            (ComplexBuffer::CB16(x), ComplexBuffer::CB16(y)) => {
                sbgemv(gemv_op, Complex::one(), self.op.fhatb16(), x, Complex::zero(), y, &g);
            }
            (ComplexBuffer::C32(x), ComplexBuffer::C32(y)) => {
                sbgemv(gemv_op, Complex::one(), self.op.fhat32(), x, Complex::zero(), y, &g);
            }
            (ComplexBuffer::C64(x), ComplexBuffer::C64(y)) => {
                sbgemv(gemv_op, Complex::one(), self.op.fhat(), x, Complex::zero(), y, &g);
            }
            _ => return Err(OpError::Internal("phase-3 tier mismatch")),
        }

        // Phase 4 — batched C2R inverse FFT in cfg[Ifft].
        let p_ifft = self.cfg.phase(MatvecPhase::Ifft);
        layout::batch_to_spectrum_into(yhat, n_out, nfreq, p_ifft, dspec);
        time.reset_for_overwrite(p_ifft, n_out * 2 * nt);
        self.engines.engine(self.device.as_ref(), p_ifft)?.inverse(dspec, time)?;

        // Phase 5 — unpad + reduce (SOTI → TOSI) through cfg[Unpad];
        // output is always double and crosses back to the host.
        let p_unpad = self.cfg.phase(MatvecPhase::Unpad);
        layout::unpad_output_into(time, n_out, nt, p_unpad, out);
        self.device.record_download(std::mem::size_of_val(out));
        Ok(())
    }

    fn gemv_op(dir: OpDirection) -> GemvOp {
        match dir {
            OpDirection::Forward => GemvOp::NoTrans,
            OpDirection::Adjoint => GemvOp::ConjTrans,
        }
    }
}

impl LinearOperator for FftMatvec {
    fn shape(&self) -> OpShape {
        OpShape::new(self.op.nd() * self.op.nt(), self.op.nm() * self.op.nt())
    }

    fn apply_forward_into(&self, input: &[f64], out: &mut [f64]) -> Result<(), OpError> {
        check_apply(self.shape(), OpDirection::Forward, input, out)?;
        let mut guard = self.workspace.checkout();
        self.run_pipeline(input, out, GemvOp::NoTrans, guard.ws())
    }

    fn apply_adjoint_into(&self, input: &[f64], out: &mut [f64]) -> Result<(), OpError> {
        check_apply(self.shape(), OpDirection::Adjoint, input, out)?;
        let mut guard = self.workspace.checkout();
        self.run_pipeline(input, out, GemvOp::ConjTrans, guard.ws())
    }

    /// Batched apply: the whole batch shares the engines resolved at
    /// build time (one plan-cache lookup per tier, not one per column —
    /// the fix for the per-input re-planning the old `Vec<Vec<f64>>` API
    /// did) and one pooled workspace per worker. With the `parallel`
    /// feature the columns overlap across the thread pool — the paper's
    /// §4.2.2 dense-operator assembly pattern.
    fn apply_many_into(
        &self,
        dir: OpDirection,
        inputs: &[f64],
        outputs: &mut [f64],
    ) -> Result<(), OpError> {
        let shape = self.shape();
        let (in_len, out_len) = shape.io_lens(dir);
        check_batch(shape, dir, inputs, outputs)?;
        let gemv_op = Self::gemv_op(dir);
        #[cfg(feature = "parallel")]
        if inputs.len().max(outputs.len()) > MANY_PAR_THRESHOLD {
            use std::sync::atomic::{AtomicBool, Ordering};
            let failed = AtomicBool::new(false);
            inputs
                .par_chunks_exact(in_len)
                .zip(outputs.par_chunks_exact_mut(out_len))
                .for_each_init(
                    || self.workspace.checkout(),
                    |guard, (i, o)| {
                        if self.run_pipeline(i, o, gemv_op, guard.ws()).is_err() {
                            failed.store(true, Ordering::Relaxed);
                        }
                    },
                );
            return if failed.load(Ordering::Relaxed) {
                Err(OpError::Internal("batched pipeline apply failed"))
            } else {
                Ok(())
            };
        }
        let mut guard = self.workspace.checkout();
        for (i, o) in inputs.chunks_exact(in_len).zip(outputs.chunks_exact_mut(out_len)) {
            self.run_pipeline(i, o, gemv_op, guard.ws())?;
        }
        Ok(())
    }
}

impl ConfigurableOperator for FftMatvec {
    fn config(&self) -> PrecisionConfig {
        self.cfg
    }

    fn set_config(&mut self, cfg: PrecisionConfig) {
        FftMatvec::set_config(self, cfg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::precision::PrecisionConfig;
    use fftmatvec_numeric::vecmath::rel_l2_error;
    use fftmatvec_numeric::SplitMix64;

    fn random_operator(nd: usize, nm: usize, nt: usize, seed: u64) -> BlockToeplitzOperator {
        let mut rng = SplitMix64::new(seed);
        let mut col = vec![0.0; nt * nd * nm];
        rng.fill_uniform(&mut col, -1.0, 1.0);
        BlockToeplitzOperator::from_first_block_column(nd, nm, nt, &col).unwrap()
    }

    fn mv(op: BlockToeplitzOperator, cfg: PrecisionConfig) -> FftMatvec {
        FftMatvec::builder(op).precision(cfg).build().unwrap()
    }

    fn dense_forward(op: &BlockToeplitzOperator, m: &[f64]) -> Vec<f64> {
        let dense = op.dense();
        let rows = op.nd() * op.nt();
        let cols = op.nm() * op.nt();
        (0..rows).map(|i| (0..cols).map(|j| dense[i * cols + j] * m[j]).sum()).collect()
    }

    fn dense_adjoint(op: &BlockToeplitzOperator, d: &[f64]) -> Vec<f64> {
        let dense = op.dense();
        let rows = op.nd() * op.nt();
        let cols = op.nm() * op.nt();
        (0..cols).map(|j| (0..rows).map(|i| dense[i * cols + j] * d[i]).sum()).collect()
    }

    #[test]
    fn forward_matches_dense_oracle_double() {
        for (nd, nm, nt) in [(2usize, 5usize, 4usize), (3, 7, 8), (1, 1, 16), (4, 4, 5)] {
            let op = random_operator(nd, nm, nt, (nd * 100 + nm * 10 + nt) as u64);
            let mut rng = SplitMix64::new(99);
            let mut m = vec![0.0; nm * nt];
            rng.fill_uniform(&mut m, -1.0, 1.0);
            let want = dense_forward(&op, &m);
            let mv = mv(op, PrecisionConfig::all_double());
            let got = mv.apply_forward(&m).unwrap();
            let err = rel_l2_error(&got, &want);
            assert!(err < 1e-13, "({nd},{nm},{nt}): err {err}");
        }
    }

    #[test]
    fn adjoint_matches_dense_oracle_double() {
        for (nd, nm, nt) in [(2usize, 5usize, 4usize), (3, 7, 8), (2, 2, 10)] {
            let op = random_operator(nd, nm, nt, (nd + nm + nt) as u64);
            let mut rng = SplitMix64::new(7);
            let mut d = vec![0.0; nd * nt];
            rng.fill_uniform(&mut d, -1.0, 1.0);
            let want = dense_adjoint(&op, &d);
            let mv = mv(op, PrecisionConfig::all_double());
            let got = mv.apply_adjoint(&d).unwrap();
            let err = rel_l2_error(&got, &want);
            assert!(err < 1e-13, "({nd},{nm},{nt}): err {err}");
        }
    }

    #[test]
    fn adjoint_consistency_dot_product() {
        // ⟨F m, d⟩ == ⟨m, F* d⟩ for every precision configuration: the
        // adjoint property must hold structurally, not just in double.
        let op = random_operator(3, 6, 5, 42);
        let mut rng = SplitMix64::new(3);
        let mut m = vec![0.0; 6 * 5];
        let mut d = vec![0.0; 3 * 5];
        rng.fill_uniform(&mut m, -1.0, 1.0);
        rng.fill_uniform(&mut d, -1.0, 1.0);
        let mut mv = mv(op, PrecisionConfig::all_double());
        for cfg in PrecisionConfig::all_configs() {
            mv.set_config(cfg);
            let fm = mv.apply_forward(&m).unwrap();
            let fsd = mv.apply_adjoint(&d).unwrap();
            let lhs: f64 = fm.iter().zip(&d).map(|(a, b)| a * b).sum();
            let rhs: f64 = m.iter().zip(&fsd).map(|(a, b)| a * b).sum();
            let tol = if cfg.is_all_double() { 1e-12 } else { 1e-4 };
            assert!(
                (lhs - rhs).abs() <= tol * lhs.abs().max(rhs.abs()).max(1.0),
                "{cfg}: {lhs} vs {rhs}"
            );
        }
    }

    #[test]
    fn mixed_precision_error_ordering() {
        let op = random_operator(4, 10, 8, 11);
        let mut rng = SplitMix64::new(5);
        let mut m = vec![0.0; 10 * 8];
        // Mantissa-stuffed inputs, as in the paper's Pareto methodology.
        rng.fill_uniform_stuffed(&mut m, -1.0, 1.0);

        let mut mv = mv(op, PrecisionConfig::all_double());
        let baseline = mv.apply_forward(&m).unwrap();

        mv.set_config(PrecisionConfig::all_single());
        let all_single = mv.apply_forward(&m).unwrap();
        let err_s = rel_l2_error(&all_single, &baseline);

        mv.set_config(PrecisionConfig::optimal_forward());
        let opt = mv.apply_forward(&m).unwrap();
        let err_opt = rel_l2_error(&opt, &baseline);

        // All-single is least accurate; the optimal config sits between
        // baseline (0) and all-single; both are in the FP32 regime.
        assert!(err_s > 0.0 && err_s < 1e-4, "err_s={err_s}");
        assert!(err_opt > 0.0 && err_opt <= err_s * 1.5, "err_opt={err_opt} err_s={err_s}");
        assert!(err_opt < 1e-5, "err_opt={err_opt}");
    }

    #[test]
    fn single_pad_alone_incurs_error_on_stuffed_input() {
        // The paper's §4.2.1 point: with mantissa-stuffed inputs, even a
        // single-precision *broadcast/pad* (a pure memory op) shows error.
        let op = random_operator(2, 4, 4, 13);
        let mut rng = SplitMix64::new(8);
        let mut m = vec![0.0; 4 * 4];
        rng.fill_uniform_stuffed(&mut m, -1.0, 1.0);
        let mut mv = mv(op, PrecisionConfig::all_double());
        let baseline = mv.apply_forward(&m).unwrap();
        mv.set_config("sdddd".parse().unwrap());
        let padded_single = mv.apply_forward(&m).unwrap();
        let err = rel_l2_error(&padded_single, &baseline);
        assert!(err > 1e-9, "stuffed input must make single pad lossy: {err}");
        assert!(err < 1e-5);
    }

    #[test]
    fn config_swap_without_rebuild() {
        let op = random_operator(2, 3, 4, 17);
        let mut rng = SplitMix64::new(2);
        let mut m = vec![0.0; 3 * 4];
        rng.fill_uniform(&mut m, -1.0, 1.0);
        let mut mv = mv(op, PrecisionConfig::all_double());
        let a = mv.apply_forward(&m).unwrap();
        mv.set_config("sssss".parse().unwrap());
        let _b = mv.apply_forward(&m).unwrap();
        mv.set_config(PrecisionConfig::all_double());
        let c = mv.apply_forward(&m).unwrap();
        assert_eq!(a, c, "double-precision results must be reproducible");
    }

    #[test]
    fn set_config_rebuilds_only_changed_tiers() {
        let op = random_operator(2, 3, 8, 71);
        let mut mv = mv(op, PrecisionConfig::all_double());
        let m = vec![1.0; 3 * 8];
        let mut out = vec![0.0; 2 * 8];
        mv.apply_forward_into(&m, &mut out).unwrap();
        let d_pool = mv.fft_scratch_pooled(Precision::Double).expect("d engine resident");

        // Changing only the GEMV tier must keep the d engine (and its
        // warmed scratch arena) untouched.
        mv.set_config("ddsdd".parse().unwrap());
        assert_eq!(mv.fft_scratch_pooled(Precision::Double), Some(d_pool), "engine kept");
        assert_eq!(mv.fft_scratch_pooled(Precision::Single), None, "no s engine needed");

        // dssdd adds the single-precision FFT tier: d survives, s built.
        mv.set_config(PrecisionConfig::optimal_forward());
        assert_eq!(mv.fft_scratch_pooled(Precision::Double), Some(d_pool), "d engine survives");
        assert_eq!(mv.fft_scratch_pooled(Precision::Single), Some(0), "s engine fresh");

        // sssss drops the double tier entirely.
        mv.set_config(PrecisionConfig::all_single());
        assert_eq!(mv.fft_scratch_pooled(Precision::Double), None, "d engine dropped");
        mv.apply_forward_into(&m, &mut out).unwrap();
        assert!(mv.fft_scratch_pooled(Precision::Single).unwrap() >= 1);
    }

    #[test]
    fn apply_into_bit_equals_allocating_apply() {
        let op = random_operator(3, 6, 8, 23);
        let mut mv = mv(op, PrecisionConfig::all_double());
        let mut rng = SplitMix64::new(4);
        let mut m = vec![0.0; 6 * 8];
        rng.fill_uniform(&mut m, -1.0, 1.0);
        for cfg in ["ddddd", "dssdd", "hbsdd"] {
            mv.set_config(cfg.parse().unwrap());
            let alloc = mv.apply_forward(&m).unwrap();
            let mut into = vec![f64::NAN; 3 * 8];
            mv.apply_forward_into(&m, &mut into).unwrap();
            assert_eq!(alloc, into, "{cfg}: into path must be bit-identical");
        }
    }

    #[test]
    fn builder_options() {
        let op = random_operator(2, 3, 4, 31);
        let mv = FftMatvec::builder(op)
            .precision(PrecisionConfig::optimal_forward())
            .backend(PipelineBackend::Cpu)
            .workspace_reuse(false)
            .build()
            .unwrap();
        assert_eq!(mv.backend(), PipelineBackend::Cpu);
        assert_eq!(mv.config(), PrecisionConfig::optimal_forward());
        let m = vec![1.0; 3 * 4];
        let _ = mv.apply_forward(&m).unwrap();
        assert_eq!(mv.workspaces_pooled(), 0, "reuse=false must not pool workspaces");
    }

    #[test]
    fn pipelines_share_cached_fft_plans() {
        // Two operators with the same N_t must not rebuild twiddle tables:
        // both pipelines hold the same cached plan object.
        let a = mv(random_operator(2, 3, 6, 50), PrecisionConfig::all_double());
        let b = mv(random_operator(4, 5, 6, 51), PrecisionConfig::all_single());
        assert!(
            std::sync::Arc::ptr_eq(&a.fft64_plan_handle(), &b.fft64_plan_handle()),
            "same N_t must share one cached FFT plan"
        );
    }

    #[test]
    fn zero_input_maps_to_zero() {
        let op = random_operator(2, 3, 4, 19);
        let mv = mv(op, PrecisionConfig::optimal_forward());
        let d = mv.apply_forward(&[0.0; 3 * 4]).unwrap();
        assert!(d.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn causality_impulse_response() {
        // An impulse at time block t0 must produce zero output before t0
        // (block lower-triangular = causal LTI).
        let (nd, nm, nt) = (2usize, 3usize, 6usize);
        let op = random_operator(nd, nm, nt, 23);
        let mv = mv(op, PrecisionConfig::all_double());
        let t0 = 3;
        let mut m = vec![0.0; nm * nt];
        m[t0 * nm + 1] = 1.0;
        let d = mv.apply_forward(&m).unwrap();
        for t in 0..t0 {
            for i in 0..nd {
                assert!(
                    d[t * nd + i].abs() < 1e-12,
                    "non-causal output at t={t}: {}",
                    d[t * nd + i]
                );
            }
        }
        // And the response at t0 is the first block's column 1.
        for i in 0..nd {
            let want = mv.operator().block(0)[i * nm + 1];
            assert!((d[t0 * nd + i] - want).abs() < 1e-12);
        }
    }

    #[test]
    fn wrong_lengths_are_typed_errors_not_panics() {
        let op = random_operator(2, 3, 4, 29);
        let mv = mv(op, PrecisionConfig::all_double());
        assert_eq!(
            mv.apply_forward(&[0.0; 5]).unwrap_err(),
            OpError::InputLength { dir: OpDirection::Forward, expected: 12, got: 5 }
        );
        let mut short = [0.0; 3];
        assert_eq!(
            mv.apply_adjoint_into(&[0.0; 8], &mut short).unwrap_err(),
            OpError::OutputLength { dir: OpDirection::Adjoint, expected: 12, got: 3 }
        );
        let mut outs = [0.0; 8];
        assert!(matches!(
            mv.apply_many_into(OpDirection::Forward, &[0.0; 13], &mut outs).unwrap_err(),
            OpError::RaggedBatch { .. }
        ));
    }

    #[test]
    fn many_matches_individual_applies() {
        let op = random_operator(3, 6, 8, 31);
        let mv = mv(op, PrecisionConfig::optimal_forward());
        let mut rng = SplitMix64::new(9);
        let (in_len, out_len) = (6 * 8, 3 * 8);
        let batch = 5;
        let mut inputs = vec![0.0; batch * in_len];
        rng.fill_uniform(&mut inputs, -1.0, 1.0);
        let mut outputs = vec![0.0; batch * out_len];
        mv.apply_forward_many_into(&inputs, &mut outputs).unwrap();
        for b in 0..batch {
            let single = mv.apply_forward(&inputs[b * in_len..(b + 1) * in_len]).unwrap();
            assert_eq!(&outputs[b * out_len..(b + 1) * out_len], &single[..]);
        }
        // Round-trip the batch through the adjoint direction too.
        let mut back = vec![0.0; batch * in_len];
        mv.apply_adjoint_many_into(&outputs, &mut back).unwrap();
        for b in 0..batch {
            let single = mv.apply_adjoint(&outputs[b * out_len..(b + 1) * out_len]).unwrap();
            assert_eq!(&back[b * in_len..(b + 1) * in_len], &single[..]);
        }
    }

    #[test]
    fn workspace_pool_parks_at_most_the_retention_cap() {
        let pool = WorkspacePool::new(true);
        let cap = workspace_retention_cap();
        // A burst of cap + 5 concurrent checkouts...
        let guards: Vec<_> = (0..cap + 5).map(|_| pool.checkout()).collect();
        assert_eq!(pool.in_flight(), cap + 5);
        assert_eq!(pool.peak_in_flight(), cap + 5);
        // ...parks only `cap` workspaces on return; the excess is freed.
        drop(guards);
        assert_eq!(pool.in_flight(), 0);
        assert_eq!(pool.pooled(), cap, "retention must be bounded by the cap");
        // Steady-state reuse still works: a fresh checkout drains the
        // parked set instead of allocating.
        let g = pool.checkout();
        assert_eq!(pool.pooled(), cap - 1);
        drop(g);
        assert_eq!(pool.pooled(), cap);
    }

    #[test]
    fn workspace_checkouts_never_alias() {
        // Concurrent guards must hold workspaces with distinct ids — the
        // ledger tracks exactly the outstanding set.
        let pool = WorkspacePool::new(true);
        let mut a = pool.checkout();
        let mut b = pool.checkout();
        assert_ne!(a.ws().id, b.ws().id, "two live guards must never share a workspace");
        let (ia, ib) = (a.ws().id, b.ws().id);
        drop(a);
        drop(b);
        // Reuse hands back the same workspaces, still distinct.
        let mut c = pool.checkout();
        let mut d = pool.checkout();
        assert_ne!(c.ws().id, d.ws().id);
        assert!([ia, ib].contains(&c.ws().id));
        assert!([ia, ib].contains(&d.ws().id));
    }

    #[test]
    fn pipeline_tracks_in_flight_workspaces() {
        let op = random_operator(2, 3, 8, 83);
        let mv = mv(op, PrecisionConfig::all_double());
        assert_eq!(mv.workspaces_in_flight(), 0);
        let m = vec![1.0; 3 * 8];
        let mut out = vec![0.0; 2 * 8];
        mv.apply_forward_into(&m, &mut out).unwrap();
        assert_eq!(mv.workspaces_in_flight(), 0, "guard returned after the apply");
        assert!(mv.workspaces_peak_in_flight() >= 1);
        assert!(mv.workspaces_pooled() <= workspace_retention_cap());
    }

    /// Identity-plus-noise operator with κ(F̂) ≈ 1, suitable for budget
    /// resolution tests (the condition estimate stays well-behaved).
    fn conditioned_operator(nd: usize, nm: usize, nt: usize, seed: u64) -> BlockToeplitzOperator {
        let mut rng = SplitMix64::new(seed);
        let mut col = vec![0.0; nt * nd * nm];
        let n = nd.min(nm);
        let mut noise = vec![0.0; nd * nm];
        rng.fill_uniform(&mut noise, -0.05, 0.05);
        col[..nd * nm].copy_from_slice(&noise);
        for i in 0..n {
            col[i * nm + i] += 1.0;
        }
        BlockToeplitzOperator::from_first_block_column(nd, nm, nt, &col).unwrap()
    }

    #[test]
    fn builder_budget_resolves_promises_and_meets_the_bound() {
        use crate::linop::OpDirection;
        let (nd, nm, nt) = (3usize, 3usize, 16usize);
        let budget = 1e-6;
        for dir in [OpDirection::Forward, OpDirection::Adjoint] {
            let op = conditioned_operator(nd, nm, nt, 5);
            let mv = FftMatvec::builder(op).error_budget_for(dir, budget).build().unwrap();
            let choice = *mv.autotuned().expect("budget was resolved at build time");
            assert_eq!(choice.direction, dir);
            assert_eq!(choice.budget, budget);
            assert_eq!(choice.config, mv.config(), "the winner is installed");
            assert!(choice.bound.total <= budget, "promised {:.3e}", choice.bound.total);
            assert!(choice.predicted_seconds > 0.0);

            // The promise holds on real arithmetic: measured relative
            // error in the tuned direction stays under the budget.
            let mut mv = mv;
            let in_len = match dir {
                OpDirection::Forward => nm * nt,
                OpDirection::Adjoint => nd * nt,
            };
            let mut x = vec![0.0; in_len];
            SplitMix64::new(17).fill_uniform_stuffed(&mut x, -1.0, 1.0);
            let measured =
                crate::pareto::error_sweep(&mut mv, dir, &[choice.config], &x).unwrap()[0];
            assert!(
                measured <= budget,
                "{dir}: measured {measured:.3e} over the {budget:.0e} budget"
            );
        }
    }

    #[test]
    fn builder_budget_failures_are_typed_config_errors() {
        use crate::linop::ConfigError;
        let op = conditioned_operator(2, 2, 8, 9);
        let err = FftMatvec::builder(op).error_budget(0.0).build().unwrap_err();
        assert!(matches!(err, ConfigError::InvalidBudget { .. }), "got {err:?}");
        let op = conditioned_operator(2, 2, 8, 9);
        let err = FftMatvec::builder(op).error_budget(1e-200).build().unwrap_err();
        match err {
            ConfigError::BudgetUnsatisfiable { budget, floor } => {
                assert_eq!(budget, 1e-200);
                assert!(floor > budget, "the reported floor explains the rejection");
            }
            other => panic!("expected BudgetUnsatisfiable, got {other:?}"),
        }
    }

    #[test]
    fn retune_swaps_configs_and_keeps_them_on_error() {
        use crate::linop::OpDirection;
        let op = conditioned_operator(3, 3, 16, 13);
        let mut mv = FftMatvec::builder(op).error_budget(1e-13).build().unwrap();
        // 1e-13 sits under every narrow config's ≥ε_s terms at this
        // shape but above the all-double floor.
        assert!(mv.config().is_all_double());

        // A loose retune frees the configuration to go narrow; whatever
        // wins, the promise tightens to the new budget and the installed
        // config is the choice's.
        let choice = mv.retune_budget(OpDirection::Forward, 1e-2).unwrap();
        assert!(choice.bound.total <= 1e-2);
        assert_eq!(mv.config(), choice.config);
        assert_eq!(mv.autotuned().unwrap().budget, 1e-2);

        // A failed retune leaves config and last promise untouched.
        let before = mv.config();
        assert!(mv.retune_budget(OpDirection::Forward, 1e-200).is_err());
        assert_eq!(mv.config(), before);
        assert_eq!(mv.autotuned().unwrap().budget, 1e-2);

        // Retune also works on pipelines built without a budget (κ is
        // estimated on first use).
        let op = conditioned_operator(3, 3, 16, 13);
        let mut plain = FftMatvec::builder(op).build().unwrap();
        assert!(plain.autotuned().is_none());
        let choice = plain.retune_budget(OpDirection::Adjoint, 1e-6).unwrap();
        assert_eq!(choice.direction, OpDirection::Adjoint);
        assert_eq!(plain.config(), choice.config);
    }

    #[test]
    fn arc_shared_operator_and_clone_fallback() {
        let op = conditioned_operator(2, 3, 8, 21);
        let shared = Arc::new(op);
        let a = FftMatvec::builder_arc(Arc::clone(&shared)).build().unwrap();
        let b = FftMatvec::builder_arc(Arc::clone(&shared))
            .precision(PrecisionConfig::all_single())
            .build()
            .unwrap();
        // Both pipelines alias the same frequency-domain setup.
        assert!(Arc::ptr_eq(&a.operator_shared(), &b.operator_shared()));

        // into_operator with co-owners deep-copies instead of disturbing
        // them; the copy computes identically.
        let m = vec![1.0; 3 * 8];
        let via_a = a.apply_forward(&m).unwrap();
        let recovered = a.into_operator();
        let rebuilt = FftMatvec::builder(recovered).build().unwrap();
        assert_eq!(rebuilt.apply_forward(&m).unwrap(), via_a);
        let via_b = b.apply_forward(&m).unwrap(); // b is undisturbed
        assert_eq!(via_b.len(), 2 * 8);

        // Sole owner: into_operator hands back the original allocation
        // (no observable copy — behavior is identical either way).
        drop(b);
        drop(shared);
        let op = conditioned_operator(2, 3, 8, 21);
        let solo = FftMatvec::builder(op).build().unwrap();
        let _op = solo.into_operator();
    }

    #[test]
    fn retune_through_the_configurable_operator_trait() {
        use crate::autotune::{PhaseWeights, TierCalibration};
        use crate::error_analysis::{condition_estimate, BoundParams};
        use crate::linop::{ConfigurableOperator, OpDirection};
        // The provided `retune` on the trait works through a trait
        // object — any ConfigurableOperator realization gains budget
        // retuning for free.
        let (nd, nm, nt) = (3usize, 3usize, 8usize);
        let op = conditioned_operator(nd, nm, nt, 31);
        let kappa = condition_estimate(&op, 1);
        let mut mv = FftMatvec::builder(op).build().unwrap();
        let obj: &mut dyn ConfigurableOperator = &mut mv;
        let dir = OpDirection::Forward;
        let params = BoundParams::for_direction(dir, nt, nd, nm, 1, 1, kappa);
        let weights = PhaseWeights::for_shape(nd, nm, nt, dir);
        let mut calib = TierCalibration::new();
        let choice = obj.retune(dir, 1e-6, &params, &weights, &mut calib).unwrap();
        assert!(choice.bound.total <= 1e-6);
        assert_eq!(obj.config(), choice.config, "retune installs through set_config");
    }
}
