//! The five-phase FFTMatvec pipeline with dynamic mixed precision.
//!
//! Both matvec directions share the same pipeline skeleton:
//!
//! ```text
//! F :  d = Unpad( IFFT( F̂ ·  FFT(Pad(m)) ) )      (NoTrans GEMV)
//! F*:  m = Unpad( IFFT( F̂ᴴ · FFT(Pad(d)) ) )      (ConjTrans GEMV)
//! ```
//!
//! The working precision is tracked through the phases: each phase
//! computes in its configured precision, casts are fused into the
//! adjacent memory operations ([`crate::layout`]), and the input/output
//! vectors are always double (Section 3.2 — downstream inverse-problem
//! computations need FP64 endpoints).

use fftmatvec_blas::{sbgemv, BatchGeometry, GemvOp};
use fftmatvec_fft::BatchedRealFft;
use fftmatvec_numeric::{bf16, f16, Complex, ComplexBuffer, Real, RealBuffer};
#[cfg(feature = "parallel")]
use rayon::prelude::*;

use crate::layout;
use crate::operator::BlockToeplitzOperator;
use crate::precision::{MatvecPhase, PrecisionConfig};

/// A configured FFTMatvec ready to apply `F` and `F*`.
pub struct FftMatvec {
    op: BlockToeplitzOperator,
    cfg: PrecisionConfig,
    fft64: BatchedRealFft<f64>,
    fft32: BatchedRealFft<f32>,
    /// 16-bit drivers are lazy (like the operator's `fhat16`/`fhatb16`):
    /// pure s/d configurations never pay for their twiddle tables.
    fft16: std::sync::OnceLock<BatchedRealFft<f16>>,
    fftb16: std::sync::OnceLock<BatchedRealFft<bf16>>,
}

impl FftMatvec {
    /// Wrap an operator with a precision configuration. The batched FFT
    /// drivers for all four lattice tiers resolve through the
    /// process-wide plan cache (`fftmatvec_fft::cache`), so every
    /// `FftMatvec` of the same `N_t` — including the per-rank pipelines
    /// of the distributed matvec — shares one set of twiddle tables per
    /// precision. The 16-bit drivers run the same generic engine on the
    /// software-emulated scalars (f32 compute, 16-bit storage rounding)
    /// and are built on first use.
    pub fn new(op: BlockToeplitzOperator, cfg: PrecisionConfig) -> Self {
        let n2 = 2 * op.nt();
        FftMatvec {
            op,
            cfg,
            fft64: BatchedRealFft::new(n2),
            fft32: BatchedRealFft::new(n2),
            fft16: std::sync::OnceLock::new(),
            fftb16: std::sync::OnceLock::new(),
        }
    }

    fn fft16(&self) -> &BatchedRealFft<f16> {
        self.fft16.get_or_init(|| BatchedRealFft::new(2 * self.op.nt()))
    }

    fn fftb16(&self) -> &BatchedRealFft<bf16> {
        self.fftb16.get_or_init(|| BatchedRealFft::new(2 * self.op.nt()))
    }

    /// The shared double-precision FFT plan handle. Handles for the same
    /// `N_t` compare pointer-equal across pipelines — useful for asserting
    /// (and testing) that plan construction is amortized.
    pub fn fft64_plan_handle(&self) -> &fftmatvec_fft::RealPlanHandle<f64> {
        self.fft64.plan_handle()
    }

    /// The wrapped operator.
    pub fn operator(&self) -> &BlockToeplitzOperator {
        &self.op
    }

    /// Current precision configuration.
    pub fn config(&self) -> PrecisionConfig {
        self.cfg
    }

    /// Swap the precision configuration at runtime (the paper's dynamic
    /// reconfiguration — no operator rebuild needed).
    pub fn set_config(&mut self, cfg: PrecisionConfig) {
        self.cfg = cfg;
    }

    /// Recover the operator.
    pub fn into_operator(self) -> BlockToeplitzOperator {
        self.op
    }

    /// Apply `d = F·m`. `m.len() == nm·nt`; returns `nd·nt`.
    pub fn apply_forward(&self, m: &[f64]) -> Vec<f64> {
        assert_eq!(m.len(), self.op.nm() * self.op.nt(), "forward input length");
        self.apply(m, GemvOp::NoTrans)
    }

    /// Apply `m = F*·d`. `d.len() == nd·nt`; returns `nm·nt`.
    pub fn apply_adjoint(&self, d: &[f64]) -> Vec<f64> {
        assert_eq!(d.len(), self.op.nd() * self.op.nt(), "adjoint input length");
        self.apply(d, GemvOp::ConjTrans)
    }

    /// Apply `F` to many independent vectors, overlapping the matvecs
    /// across the thread pool — the paper's §4.2.2 pattern for assembling
    /// dense data-space operators, where "the matvec calls can be
    /// overlapped with the host routines that generate input vectors and
    /// save output vectors".
    pub fn apply_forward_many(&self, inputs: &[Vec<f64>]) -> Vec<Vec<f64>> {
        #[cfg(feature = "parallel")]
        let out = inputs.par_iter().map(|m| self.apply_forward(m)).collect();
        #[cfg(not(feature = "parallel"))]
        let out = inputs.iter().map(|m| self.apply_forward(m)).collect();
        out
    }

    /// Apply `F*` to many independent vectors (see
    /// [`FftMatvec::apply_forward_many`]).
    pub fn apply_adjoint_many(&self, inputs: &[Vec<f64>]) -> Vec<Vec<f64>> {
        #[cfg(feature = "parallel")]
        let out = inputs.par_iter().map(|d| self.apply_adjoint(d)).collect();
        #[cfg(not(feature = "parallel"))]
        let out = inputs.iter().map(|d| self.apply_adjoint(d)).collect();
        out
    }

    fn apply(&self, input: &[f64], gemv_op: GemvOp) -> Vec<f64> {
        let (nd, nm, nt, nfreq) = (self.op.nd(), self.op.nm(), self.op.nt(), self.op.nfreq());
        // Series counts on each side of the GEMV.
        let (n_in, n_out) = match gemv_op {
            GemvOp::NoTrans => (nm, nd),
            _ => (nd, nm),
        };

        // Phase 1 — broadcast + zero-pad (TOSI → SOTI), in cfg[Pad].
        let p_pad = self.cfg.phase(MatvecPhase::Pad);
        let padded = layout::pad_input(input, n_in, nt, p_pad);

        // Phase 2 — batched R2C FFT in cfg[Fft]; the cast (if any) is
        // fused with the pad output.
        let p_fft = self.cfg.phase(MatvecPhase::Fft);
        let padded = layout::cast_real(padded, p_fft);
        let spectrum = match &padded {
            RealBuffer::F16(v) => {
                let mut spec = vec![Complex::<f16>::zero(); n_in * nfreq];
                self.fft16().forward_batch(v, &mut spec);
                ComplexBuffer::C16(spec)
            }
            RealBuffer::BF16(v) => {
                let mut spec = vec![Complex::<bf16>::zero(); n_in * nfreq];
                self.fftb16().forward_batch(v, &mut spec);
                ComplexBuffer::CB16(spec)
            }
            RealBuffer::F32(v) => {
                let mut spec = vec![Complex::<f32>::zero(); n_in * nfreq];
                self.fft32.forward_batch(v, &mut spec);
                ComplexBuffer::C32(spec)
            }
            RealBuffer::F64(v) => {
                let mut spec = vec![Complex::<f64>::zero(); n_in * nfreq];
                self.fft64.forward_batch(v, &mut spec);
                ComplexBuffer::C64(spec)
            }
        };
        drop(padded);

        // Phase 3 — SOTI→TOSI reorder (fused cast), then the strided
        // batched GEMV in cfg[Sbgemv], then TOSI→SOTI back in the lowest
        // precision of phases 3 and 4.
        let p_gemv = self.cfg.phase(MatvecPhase::Sbgemv);
        let xhat = layout::spectrum_to_batch(&spectrum, n_in, nfreq, p_gemv);
        drop(spectrum);
        let g = BatchGeometry::packed(nd, nm, gemv_op, nfreq);
        let yhat = match &xhat {
            ComplexBuffer::C16(x) => {
                let mut y = vec![Complex::<f16>::zero(); n_out * nfreq];
                sbgemv(gemv_op, Complex::one(), self.op.fhat16(), x, Complex::zero(), &mut y, &g);
                ComplexBuffer::C16(y)
            }
            ComplexBuffer::CB16(x) => {
                let mut y = vec![Complex::<bf16>::zero(); n_out * nfreq];
                sbgemv(gemv_op, Complex::one(), self.op.fhatb16(), x, Complex::zero(), &mut y, &g);
                ComplexBuffer::CB16(y)
            }
            ComplexBuffer::C32(x) => {
                let mut y = vec![Complex::<f32>::zero(); n_out * nfreq];
                sbgemv(gemv_op, Complex::one(), self.op.fhat32(), x, Complex::zero(), &mut y, &g);
                ComplexBuffer::C32(y)
            }
            ComplexBuffer::C64(x) => {
                let mut y = vec![Complex::<f64>::zero(); n_out * nfreq];
                sbgemv(gemv_op, Complex::one(), self.op.fhat(), x, Complex::zero(), &mut y, &g);
                ComplexBuffer::C64(y)
            }
        };
        drop(xhat);

        // Phase 4 — batched C2R inverse FFT in cfg[Ifft].
        let p_ifft = self.cfg.phase(MatvecPhase::Ifft);
        let dspec = layout::batch_to_spectrum(&yhat, n_out, nfreq, p_ifft);
        drop(yhat);
        let time = match &dspec {
            ComplexBuffer::C16(s) => {
                let mut t = vec![f16::ZERO; n_out * 2 * nt];
                self.fft16().inverse_batch(s, &mut t);
                RealBuffer::F16(t)
            }
            ComplexBuffer::CB16(s) => {
                let mut t = vec![bf16::ZERO; n_out * 2 * nt];
                self.fftb16().inverse_batch(s, &mut t);
                RealBuffer::BF16(t)
            }
            ComplexBuffer::C32(s) => {
                let mut t = vec![0.0f32; n_out * 2 * nt];
                self.fft32.inverse_batch(s, &mut t);
                RealBuffer::F32(t)
            }
            ComplexBuffer::C64(s) => {
                let mut t = vec![0.0f64; n_out * 2 * nt];
                self.fft64.inverse_batch(s, &mut t);
                RealBuffer::F64(t)
            }
        };
        drop(dspec);

        // Phase 5 — unpad + reduce (SOTI → TOSI) through cfg[Unpad];
        // output is always double.
        let p_unpad = self.cfg.phase(MatvecPhase::Unpad);
        layout::unpad_output(&time, n_out, nt, p_unpad)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::precision::PrecisionConfig;
    use fftmatvec_numeric::vecmath::rel_l2_error;
    use fftmatvec_numeric::SplitMix64;

    fn random_operator(nd: usize, nm: usize, nt: usize, seed: u64) -> BlockToeplitzOperator {
        let mut rng = SplitMix64::new(seed);
        let mut col = vec![0.0; nt * nd * nm];
        rng.fill_uniform(&mut col, -1.0, 1.0);
        BlockToeplitzOperator::from_first_block_column(nd, nm, nt, &col).unwrap()
    }

    fn dense_forward(op: &BlockToeplitzOperator, m: &[f64]) -> Vec<f64> {
        let dense = op.dense();
        let rows = op.nd() * op.nt();
        let cols = op.nm() * op.nt();
        (0..rows).map(|i| (0..cols).map(|j| dense[i * cols + j] * m[j]).sum()).collect()
    }

    fn dense_adjoint(op: &BlockToeplitzOperator, d: &[f64]) -> Vec<f64> {
        let dense = op.dense();
        let rows = op.nd() * op.nt();
        let cols = op.nm() * op.nt();
        (0..cols).map(|j| (0..rows).map(|i| dense[i * cols + j] * d[i]).sum()).collect()
    }

    #[test]
    fn forward_matches_dense_oracle_double() {
        for (nd, nm, nt) in [(2usize, 5usize, 4usize), (3, 7, 8), (1, 1, 16), (4, 4, 5)] {
            let op = random_operator(nd, nm, nt, (nd * 100 + nm * 10 + nt) as u64);
            let mut rng = SplitMix64::new(99);
            let mut m = vec![0.0; nm * nt];
            rng.fill_uniform(&mut m, -1.0, 1.0);
            let want = dense_forward(&op, &m);
            let mv = FftMatvec::new(op, PrecisionConfig::all_double());
            let got = mv.apply_forward(&m);
            let err = rel_l2_error(&got, &want);
            assert!(err < 1e-13, "({nd},{nm},{nt}): err {err}");
        }
    }

    #[test]
    fn adjoint_matches_dense_oracle_double() {
        for (nd, nm, nt) in [(2usize, 5usize, 4usize), (3, 7, 8), (2, 2, 10)] {
            let op = random_operator(nd, nm, nt, (nd + nm + nt) as u64);
            let mut rng = SplitMix64::new(7);
            let mut d = vec![0.0; nd * nt];
            rng.fill_uniform(&mut d, -1.0, 1.0);
            let want = dense_adjoint(&op, &d);
            let mv = FftMatvec::new(op, PrecisionConfig::all_double());
            let got = mv.apply_adjoint(&d);
            let err = rel_l2_error(&got, &want);
            assert!(err < 1e-13, "({nd},{nm},{nt}): err {err}");
        }
    }

    #[test]
    fn adjoint_consistency_dot_product() {
        // ⟨F m, d⟩ == ⟨m, F* d⟩ for every precision configuration: the
        // adjoint property must hold structurally, not just in double.
        let op = random_operator(3, 6, 5, 42);
        let mut rng = SplitMix64::new(3);
        let mut m = vec![0.0; 6 * 5];
        let mut d = vec![0.0; 3 * 5];
        rng.fill_uniform(&mut m, -1.0, 1.0);
        rng.fill_uniform(&mut d, -1.0, 1.0);
        let mut mv = FftMatvec::new(op, PrecisionConfig::all_double());
        for cfg in PrecisionConfig::all_configs() {
            mv.set_config(cfg);
            let fm = mv.apply_forward(&m);
            let fsd = mv.apply_adjoint(&d);
            let lhs: f64 = fm.iter().zip(&d).map(|(a, b)| a * b).sum();
            let rhs: f64 = m.iter().zip(&fsd).map(|(a, b)| a * b).sum();
            let tol = if cfg.is_all_double() { 1e-12 } else { 1e-4 };
            assert!(
                (lhs - rhs).abs() <= tol * lhs.abs().max(rhs.abs()).max(1.0),
                "{cfg}: {lhs} vs {rhs}"
            );
        }
    }

    #[test]
    fn mixed_precision_error_ordering() {
        let op = random_operator(4, 10, 8, 11);
        let mut rng = SplitMix64::new(5);
        let mut m = vec![0.0; 10 * 8];
        // Mantissa-stuffed inputs, as in the paper's Pareto methodology.
        rng.fill_uniform_stuffed(&mut m, -1.0, 1.0);

        let mut mv = FftMatvec::new(op, PrecisionConfig::all_double());
        let baseline = mv.apply_forward(&m);

        mv.set_config(PrecisionConfig::all_single());
        let all_single = mv.apply_forward(&m);
        let err_s = rel_l2_error(&all_single, &baseline);

        mv.set_config(PrecisionConfig::optimal_forward());
        let opt = mv.apply_forward(&m);
        let err_opt = rel_l2_error(&opt, &baseline);

        // All-single is least accurate; the optimal config sits between
        // baseline (0) and all-single; both are in the FP32 regime.
        assert!(err_s > 0.0 && err_s < 1e-4, "err_s={err_s}");
        assert!(err_opt > 0.0 && err_opt <= err_s * 1.5, "err_opt={err_opt} err_s={err_s}");
        assert!(err_opt < 1e-5, "err_opt={err_opt}");
    }

    #[test]
    fn single_pad_alone_incurs_error_on_stuffed_input() {
        // The paper's §4.2.1 point: with mantissa-stuffed inputs, even a
        // single-precision *broadcast/pad* (a pure memory op) shows error.
        let op = random_operator(2, 4, 4, 13);
        let mut rng = SplitMix64::new(8);
        let mut m = vec![0.0; 4 * 4];
        rng.fill_uniform_stuffed(&mut m, -1.0, 1.0);
        let mut mv = FftMatvec::new(op, PrecisionConfig::all_double());
        let baseline = mv.apply_forward(&m);
        mv.set_config("sdddd".parse().unwrap());
        let padded_single = mv.apply_forward(&m);
        let err = rel_l2_error(&padded_single, &baseline);
        assert!(err > 1e-9, "stuffed input must make single pad lossy: {err}");
        assert!(err < 1e-5);
    }

    #[test]
    fn config_swap_without_rebuild() {
        let op = random_operator(2, 3, 4, 17);
        let mut rng = SplitMix64::new(2);
        let mut m = vec![0.0; 3 * 4];
        rng.fill_uniform(&mut m, -1.0, 1.0);
        let mut mv = FftMatvec::new(op, PrecisionConfig::all_double());
        let a = mv.apply_forward(&m);
        mv.set_config("sssss".parse().unwrap());
        let _b = mv.apply_forward(&m);
        mv.set_config(PrecisionConfig::all_double());
        let c = mv.apply_forward(&m);
        assert_eq!(a, c, "double-precision results must be reproducible");
    }

    #[test]
    fn pipelines_share_cached_fft_plans() {
        // Two operators with the same N_t must not rebuild twiddle tables:
        // both pipelines hold the same cached plan object.
        let a = FftMatvec::new(random_operator(2, 3, 6, 50), PrecisionConfig::all_double());
        let b = FftMatvec::new(random_operator(4, 5, 6, 51), PrecisionConfig::all_single());
        assert!(
            std::sync::Arc::ptr_eq(a.fft64_plan_handle(), b.fft64_plan_handle()),
            "same N_t must share one cached FFT plan"
        );
    }

    #[test]
    fn zero_input_maps_to_zero() {
        let op = random_operator(2, 3, 4, 19);
        let mv = FftMatvec::new(op, PrecisionConfig::optimal_forward());
        let d = mv.apply_forward(&[0.0; 3 * 4]);
        assert!(d.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn causality_impulse_response() {
        // An impulse at time block t0 must produce zero output before t0
        // (block lower-triangular = causal LTI).
        let (nd, nm, nt) = (2usize, 3usize, 6usize);
        let op = random_operator(nd, nm, nt, 23);
        let mv = FftMatvec::new(op, PrecisionConfig::all_double());
        let t0 = 3;
        let mut m = vec![0.0; nm * nt];
        m[t0 * nm + 1] = 1.0;
        let d = mv.apply_forward(&m);
        for t in 0..t0 {
            for i in 0..nd {
                assert!(
                    d[t * nd + i].abs() < 1e-12,
                    "non-causal output at t={t}: {}",
                    d[t * nd + i]
                );
            }
        }
        // And the response at t0 is the first block's column 1.
        for i in 0..nd {
            let want = mv.operator().block(0)[i * nm + 1];
            assert!((d[t0 * nd + i] - want).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "forward input length")]
    fn wrong_input_length_panics() {
        let op = random_operator(2, 3, 4, 29);
        let mv = FftMatvec::new(op, PrecisionConfig::all_double());
        let _ = mv.apply_forward(&[0.0; 5]);
    }

    #[test]
    fn many_matches_individual_applies() {
        let op = random_operator(3, 6, 8, 31);
        let mv = FftMatvec::new(op, PrecisionConfig::optimal_forward());
        let mut rng = SplitMix64::new(9);
        let inputs: Vec<Vec<f64>> = (0..5)
            .map(|_| {
                let mut m = vec![0.0; 6 * 8];
                rng.fill_uniform(&mut m, -1.0, 1.0);
                m
            })
            .collect();
        let batched = mv.apply_forward_many(&inputs);
        for (m, got) in inputs.iter().zip(&batched) {
            assert_eq!(got, &mv.apply_forward(m), "overlap must not change results");
        }
        let ds: Vec<Vec<f64>> = batched;
        let adj = mv.apply_adjoint_many(&ds);
        for (d, got) in ds.iter().zip(&adj) {
            assert_eq!(got, &mv.apply_adjoint(d));
        }
    }
}
