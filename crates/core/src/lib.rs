//! # fftmatvec-core — the FFTMatvec algorithm
//!
//! The paper's primary contribution: FFT-based matrix-vector products with
//! block lower-triangular Toeplitz matrices, with a dynamic mixed-precision
//! framework over the five computational phases (Section 2.4):
//!
//! 1. broadcast + zero-pad the input vector,
//! 2. batched (real-to-complex) FFT,
//! 3. block-diagonal matvec in Fourier space — a strided batched GEMV over
//!    `N_t + 1` frequency matrices of size `N_d × N_m`,
//! 4. batched (complex-to-real) inverse FFT,
//! 5. unpad + reduce.
//!
//! Each phase computes in single or double precision per a runtime
//! [`PrecisionConfig`] (32 combinations); casts are fused into the adjacent
//! memory operations, and memory operations run in the lowest precision of
//! their neighbouring phases (Section 3.2). The adjoint matvec `F*` uses
//! the conjugate-transpose GEMV with input/output roles switched.
//!
//! Numerical results are real CPU arithmetic; simulated GPU timings come
//! from `fftmatvec-gpu` profiles built by [`timing`]. [`distributed`] runs
//! the algorithm over a 2-D process grid with real per-rank data and the
//! `fftmatvec-comm` cost model. [`error_analysis`] implements the paper's
//! first-order bound (Eq. 6); [`pareto`] the Pareto-front configuration
//! selection.
//!
//! ## Public API
//!
//! All three matvec realizations — [`FftMatvec`], [`DirectMatvec`], and
//! [`DistributedFftMatvec`] — implement the [`LinearOperator`] trait
//! ([`linop`]): `shape()` plus zero-allocation `apply_forward_into` /
//! `apply_adjoint_into` hot paths, with allocating `apply_forward` /
//! `apply_adjoint` and the flat-strided batched `apply_many_into`
//! provided on top. Construction is builder-based
//! ([`FftMatvec::builder`]), and all construction/apply failures are
//! typed ([`ConfigError`] / [`OpError`]) — no panics on the public
//! paths.

pub mod autotune;
pub mod direct;
pub mod distributed;
pub mod error_analysis;
pub mod layout;
pub mod linop;
pub mod operator;
pub mod pareto;
pub mod pipeline;
pub mod precision;
pub mod timing;

pub use autotune::{AutotuneChoice, PhaseWeights, TierCalibration};
pub use direct::DirectMatvec;
pub use distributed::DistributedFftMatvec;
pub use error_analysis::{BoundParams, ErrorBound};
pub use linop::{
    check_apply, check_batch, ConfigError, ConfigurableOperator, LinearOperator, OpDirection,
    OpError, OpShape,
};
pub use operator::BlockToeplitzOperator;
pub use pareto::{pareto_front, ParetoPoint};
pub use pipeline::{workspace_retention_cap, FftMatvec, FftMatvecBuilder, PipelineBackend};
pub use precision::{MatvecPhase, PrecisionConfig};
