//! The unified linear-operator API.
//!
//! The paper treats the FFT matvec, the direct `O(N_t²)` matvec, and the
//! distributed matvec as interchangeable realizations of one operator
//! `F`/`F*` (Section 3; the predecessor work makes the same abstraction
//! explicit for Hessian actions in Bayesian inversion). This module is
//! that abstraction as a trait: every realization exposes
//!
//! * [`LinearOperator::shape`] — `F : R^cols → R^rows`,
//! * [`LinearOperator::apply_forward_into`] /
//!   [`LinearOperator::apply_adjoint_into`] — the zero-allocation hot
//!   paths writing into caller buffers,
//!
//! and inherits allocating conveniences ([`LinearOperator::apply_forward`],
//! [`LinearOperator::apply_adjoint`]) plus the flat-strided batched
//! [`LinearOperator::apply_many_into`]. Downstream consumers (Bayesian
//! inversion, OED, Pareto sweeps) are written against `&dyn
//! LinearOperator` or `L: LinearOperator`, so every future backend — a
//! GPU tensor-core tier, a sharded serving realization — plugs into the
//! same call sites.
//!
//! All public construction and apply paths report failures through the
//! typed [`OpError`] / [`ConfigError`] hierarchy instead of panicking.

use crate::precision::PrecisionConfig;

/// Shape of a linear operator: the forward map takes `cols` inputs to
/// `rows` outputs; the adjoint map is the transpose.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OpShape {
    /// Output length of the forward map (`N_d·N_t` for the matvecs here).
    pub rows: usize,
    /// Input length of the forward map (`N_m·N_t`).
    pub cols: usize,
}

impl OpShape {
    /// Shape of a `rows × cols` operator.
    pub fn new(rows: usize, cols: usize) -> Self {
        OpShape { rows, cols }
    }

    /// `(input_len, output_len)` for an application direction.
    #[inline]
    pub fn io_lens(&self, dir: OpDirection) -> (usize, usize) {
        match dir {
            OpDirection::Forward => (self.cols, self.rows),
            OpDirection::Adjoint => (self.rows, self.cols),
        }
    }
}

/// Which direction of the operator an application runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OpDirection {
    /// `d = F·m`.
    Forward,
    /// `m = F*·d`.
    Adjoint,
}

impl std::fmt::Display for OpDirection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OpDirection::Forward => write!(f, "forward"),
            OpDirection::Adjoint => write!(f, "adjoint"),
        }
    }
}

/// Typed error for the apply paths. Every variant is a caller-input
/// problem reported back instead of a panic; see the crate README's
/// "Public API" section for when each fires.
///
/// `OpError` is the middle layer of the workspace's error hierarchy
/// (`ServiceError` → `OpError` → [`ConfigError`]): construction failures
/// convert upward via `From<ConfigError>`, and the service crate wraps
/// `OpError` in turn, so callers at any layer match one way.
///
/// (`PartialEq` only, not `Eq`: [`ConfigError`]'s budget variants carry
/// `f64` payloads.)
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum OpError {
    /// The input slice length does not match the operator shape
    /// (`cols` for forward, `rows` for adjoint).
    InputLength { dir: OpDirection, expected: usize, got: usize },
    /// The output slice length does not match the operator shape
    /// (`rows` for forward, `cols` for adjoint).
    OutputLength { dir: OpDirection, expected: usize, got: usize },
    /// A batched input buffer is not a whole multiple of the per-item
    /// input stride.
    RaggedBatch { dir: OpDirection, got: usize, stride: usize },
    /// A batched output buffer implies a different batch count than the
    /// input buffer (`expected`/`got` are element counts).
    BatchMismatch { dir: OpDirection, expected: usize, got: usize },
    /// An internal invariant failed (unreachable by construction —
    /// reported as an error rather than a panic so the hot paths stay
    /// panic-free end to end).
    Internal(&'static str),
    /// An error sweep's all-double reference application produced an
    /// identically-zero vector, so relative error against it is
    /// undefined (`0/0`). Surfaced as a typed error instead of letting
    /// `NaN` points silently fall out of
    /// [`crate::pareto::optimal_for_tolerance`].
    DegenerateBaseline {
        /// The direction whose baseline collapsed to zero.
        dir: OpDirection,
    },
    /// An operator could not be constructed. Carries the underlying
    /// [`ConfigError`] (also reachable through
    /// [`std::error::Error::source`]), so paths that build operators on
    /// demand can report failures through one error type.
    Config(ConfigError),
    /// A device-backend primitive failed during execution — e.g. the
    /// portability backend's kernels are validated but not runnable in
    /// this environment. Carries the underlying
    /// [`fftmatvec_backend::BackendError`] (also reachable through
    /// [`std::error::Error::source`]).
    Backend(fftmatvec_backend::BackendError),
}

impl std::fmt::Display for OpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OpError::InputLength { dir, expected, got } => {
                write!(f, "{dir} input has {got} elements, operator expects {expected}")
            }
            OpError::OutputLength { dir, expected, got } => {
                write!(f, "{dir} output has {got} elements, operator produces {expected}")
            }
            OpError::RaggedBatch { dir, got, stride } => {
                write!(f, "{dir} batch of {got} elements is not a multiple of the stride {stride}")
            }
            OpError::BatchMismatch { dir, expected, got } => {
                write!(f, "{dir} batch output has {got} elements, inputs imply {expected}")
            }
            OpError::Internal(what) => write!(f, "internal operator invariant failed: {what}"),
            OpError::DegenerateBaseline { dir } => {
                write!(
                    f,
                    "all-double {dir} baseline is identically zero; \
                     relative error against it is undefined"
                )
            }
            OpError::Config(e) => write!(f, "operator construction failed: {e}"),
            OpError::Backend(e) => write!(f, "device backend failed: {e}"),
        }
    }
}

impl std::error::Error for OpError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OpError::Config(e) => Some(e),
            OpError::Backend(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ConfigError> for OpError {
    fn from(e: ConfigError) -> OpError {
        OpError::Config(e)
    }
}

impl From<fftmatvec_backend::BackendError> for OpError {
    fn from(e: fftmatvec_backend::BackendError) -> OpError {
        OpError::Backend(e)
    }
}

impl From<OpError> for String {
    fn from(e: OpError) -> String {
        e.to_string()
    }
}

/// Typed error for operator/pipeline construction — the bottom layer of
/// the error hierarchy; see [`OpError`]. (`PartialEq` only: the budget
/// variants carry `f64` payloads.)
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum ConfigError {
    /// A problem dimension (`nd`, `nm`, or `nt`) is zero.
    ZeroDimension { what: &'static str },
    /// The first-block-column buffer has the wrong number of entries for
    /// the declared `(nd, nm, nt)`.
    ColumnLength { expected: usize, got: usize },
    /// A process-grid axis has more ranks than the problem axis it
    /// partitions has entries.
    GridOversubscribed { axis: &'static str, ranks: usize, extent: usize },
    /// An error budget is not a positive finite number.
    InvalidBudget {
        /// The rejected budget value.
        budget: f64,
    },
    /// No configuration on the 1024-point lattice meets the requested
    /// error budget — even all-double's Eq. 6 bound (`floor`) exceeds it.
    BudgetUnsatisfiable {
        /// The requested budget.
        budget: f64,
        /// The smallest achievable bound (all-double's).
        floor: f64,
    },
    /// Online calibration during an autotune pass failed. Carries the
    /// underlying apply error's message (timing applies use
    /// correctly-sized buffers, so this is unreachable by construction).
    Autotune(String),
    /// Backend selection or warm-up failed at build time: the requested
    /// backend is unknown, unregistered, or cannot run here. Carries the
    /// underlying [`fftmatvec_backend::BackendError`] (also reachable
    /// through [`std::error::Error::source`]).
    Backend(fftmatvec_backend::BackendError),
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroDimension { what } => {
                write!(f, "operator dimension {what} must be nonzero")
            }
            ConfigError::ColumnLength { expected, got } => {
                write!(f, "first block column has {got} entries, expected nt*nd*nm = {expected}")
            }
            ConfigError::GridOversubscribed { axis, ranks, extent } => {
                write!(f, "grid {axis} count {ranks} exceeds the partitioned extent {extent}")
            }
            ConfigError::InvalidBudget { budget } => {
                write!(f, "error budget {budget} is not a positive finite number")
            }
            ConfigError::BudgetUnsatisfiable { budget, floor } => {
                write!(
                    f,
                    "error budget {budget:.3e} is below the all-double bound floor {floor:.3e}; \
                     no precision configuration can satisfy it"
                )
            }
            ConfigError::Autotune(msg) => write!(f, "autotune calibration failed: {msg}"),
            ConfigError::Backend(e) => write!(f, "backend selection failed: {e}"),
        }
    }
}

impl std::error::Error for ConfigError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ConfigError::Backend(e) => Some(e),
            _ => None,
        }
    }
}

impl From<fftmatvec_backend::BackendError> for ConfigError {
    fn from(e: fftmatvec_backend::BackendError) -> ConfigError {
        ConfigError::Backend(e)
    }
}

impl From<ConfigError> for String {
    fn from(e: ConfigError) -> String {
        e.to_string()
    }
}

/// Validate one apply call's slice lengths against `shape`, producing
/// the typed [`OpError`] every realization is expected to return. Public
/// so out-of-crate realizations of [`LinearOperator`] (e.g. the
/// multi-level Toeplitz operators) report identical errors to the
/// built-in pipelines.
pub fn check_apply(
    shape: OpShape,
    dir: OpDirection,
    input: &[f64],
    out: &[f64],
) -> Result<(), OpError> {
    let (in_len, out_len) = shape.io_lens(dir);
    if input.len() != in_len {
        return Err(OpError::InputLength { dir, expected: in_len, got: input.len() });
    }
    if out.len() != out_len {
        return Err(OpError::OutputLength { dir, expected: out_len, got: out.len() });
    }
    Ok(())
}

/// Validate a flat-strided batch and return its item count. Public for
/// the same reason as [`check_apply`]: external realizations must
/// produce the same typed batch errors the shared conformance suite
/// asserts on.
pub fn check_batch(
    shape: OpShape,
    dir: OpDirection,
    inputs: &[f64],
    outputs: &[f64],
) -> Result<usize, OpError> {
    let (in_len, out_len) = shape.io_lens(dir);
    if in_len == 0 || out_len == 0 {
        return Err(OpError::Internal("operator with a zero-length side"));
    }
    if inputs.len() % in_len != 0 {
        return Err(OpError::RaggedBatch { dir, got: inputs.len(), stride: in_len });
    }
    let batch = inputs.len() / in_len;
    if outputs.len() != batch * out_len {
        return Err(OpError::BatchMismatch { dir, expected: batch * out_len, got: outputs.len() });
    }
    Ok(batch)
}

/// A realization of the block-triangular Toeplitz operator `F` (and its
/// adjoint `F*`) acting on flat `f64` vectors.
///
/// Required surface: [`shape`](LinearOperator::shape) plus the two
/// `_into` applications, which must write the full output and perform no
/// heap allocation after warm-up. The allocating and batched methods are
/// provided on top; implementations may override
/// [`apply_many_into`](LinearOperator::apply_many_into) to share per-call
/// setup (plans, workspaces) across the batch.
pub trait LinearOperator {
    /// Operator shape; `apply_forward` maps `cols` → `rows`.
    fn shape(&self) -> OpShape;

    /// `out = F·input`. `input.len() == shape().cols`,
    /// `out.len() == shape().rows`.
    fn apply_forward_into(&self, input: &[f64], out: &mut [f64]) -> Result<(), OpError>;

    /// `out = F*·input`. `input.len() == shape().rows`,
    /// `out.len() == shape().cols`.
    fn apply_adjoint_into(&self, input: &[f64], out: &mut [f64]) -> Result<(), OpError>;

    /// Dispatch an `_into` application by direction.
    fn apply_into(&self, dir: OpDirection, input: &[f64], out: &mut [f64]) -> Result<(), OpError> {
        match dir {
            OpDirection::Forward => self.apply_forward_into(input, out),
            OpDirection::Adjoint => self.apply_adjoint_into(input, out),
        }
    }

    /// Allocating forward apply: `F·input` into a fresh vector.
    fn apply_forward(&self, input: &[f64]) -> Result<Vec<f64>, OpError> {
        let mut out = vec![0.0; self.shape().rows];
        self.apply_forward_into(input, &mut out)?;
        Ok(out)
    }

    /// Allocating adjoint apply: `F*·input` into a fresh vector.
    fn apply_adjoint(&self, input: &[f64]) -> Result<Vec<f64>, OpError> {
        let mut out = vec![0.0; self.shape().cols];
        self.apply_adjoint_into(input, &mut out)?;
        Ok(out)
    }

    /// Batched apply over **flat strided buffers**: `inputs` packs the
    /// batch contiguously (`inputs[b·in_len..][..in_len]` is item `b`),
    /// `outputs` likewise with the output stride — no `Vec<Vec<f64>>`
    /// staging, no per-item clones. The default visits items in order
    /// through the `_into` path; [`crate::FftMatvec`] overrides it so the
    /// whole batch shares one engine/workspace checkout.
    fn apply_many_into(
        &self,
        dir: OpDirection,
        inputs: &[f64],
        outputs: &mut [f64],
    ) -> Result<(), OpError> {
        let shape = self.shape();
        let (in_len, out_len) = shape.io_lens(dir);
        check_batch(shape, dir, inputs, outputs)?;
        for (i, o) in inputs.chunks_exact(in_len).zip(outputs.chunks_exact_mut(out_len)) {
            self.apply_into(dir, i, o)?;
        }
        Ok(())
    }

    /// [`apply_many_into`](LinearOperator::apply_many_into) in the
    /// forward direction.
    fn apply_forward_many_into(&self, inputs: &[f64], outputs: &mut [f64]) -> Result<(), OpError> {
        self.apply_many_into(OpDirection::Forward, inputs, outputs)
    }

    /// [`apply_many_into`](LinearOperator::apply_many_into) in the
    /// adjoint direction.
    fn apply_adjoint_many_into(&self, inputs: &[f64], outputs: &mut [f64]) -> Result<(), OpError> {
        self.apply_many_into(OpDirection::Adjoint, inputs, outputs)
    }
}

/// Forward every trait method through a pointer-like wrapper, preserving
/// any `apply_many_into` override of the pointee. Covers `&T`, `Box<T>`,
/// and `Arc<T>` (including `Arc<dyn LinearOperator + Send + Sync>`, the
/// form the service registry shares across concurrent batch windows).
macro_rules! forward_linear_operator {
    ($($ptr:ty),*) => {$(
        impl<T: LinearOperator + ?Sized> LinearOperator for $ptr {
            fn shape(&self) -> OpShape {
                (**self).shape()
            }
            fn apply_forward_into(&self, input: &[f64], out: &mut [f64]) -> Result<(), OpError> {
                (**self).apply_forward_into(input, out)
            }
            fn apply_adjoint_into(&self, input: &[f64], out: &mut [f64]) -> Result<(), OpError> {
                (**self).apply_adjoint_into(input, out)
            }
            fn apply_many_into(
                &self,
                dir: OpDirection,
                inputs: &[f64],
                outputs: &mut [f64],
            ) -> Result<(), OpError> {
                (**self).apply_many_into(dir, inputs, outputs)
            }
        }
    )*};
}

forward_linear_operator!(&T, Box<T>, std::sync::Arc<T>);

/// A [`LinearOperator`] whose five-phase precision configuration can be
/// swapped at runtime without rebuilding the operator — the paper's
/// dynamic reconfiguration. Pareto/error sweeps
/// ([`crate::pareto::error_sweep`]) run against this trait, so they work
/// for the single-rank pipeline and the distributed matvec alike.
pub trait ConfigurableOperator: LinearOperator {
    /// Current precision configuration.
    fn config(&self) -> PrecisionConfig;

    /// Swap the configuration; implementations rebuild only what the new
    /// configuration actually needs.
    fn set_config(&mut self, cfg: PrecisionConfig);

    /// Re-resolve this operator's configuration for an error budget and
    /// install the winner through [`set_config`](Self::set_config) — the
    /// paper's tolerance-driven selection (§3.2/§4.2) run online. Prunes
    /// the 1024-config lattice by Eq. 6 (`params` supplies `κ` and the
    /// direction-side dimensions), calibrates the cost of each admissible
    /// tier from timed warm applies through `calib` (reused across calls,
    /// so repeat retunes only refine), and picks the cheapest admissible
    /// configuration. See [`crate::autotune`] for the selection rule.
    ///
    /// Errors leave the current configuration in place.
    fn retune(
        &mut self,
        dir: OpDirection,
        budget: f64,
        params: &crate::error_analysis::BoundParams,
        weights: &crate::autotune::PhaseWeights,
        calib: &mut crate::autotune::TierCalibration,
    ) -> Result<crate::autotune::AutotuneChoice, OpError> {
        let choice = crate::autotune::autotune(self, dir, budget, params, weights, calib)?;
        self.set_config(choice.config);
        Ok(choice)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal in-test realization: diag(2) on length-3 vectors.
    struct Doubler;

    impl LinearOperator for Doubler {
        fn shape(&self) -> OpShape {
            OpShape::new(3, 3)
        }
        fn apply_forward_into(&self, input: &[f64], out: &mut [f64]) -> Result<(), OpError> {
            check_apply(self.shape(), OpDirection::Forward, input, out)?;
            for (o, &x) in out.iter_mut().zip(input) {
                *o = 2.0 * x;
            }
            Ok(())
        }
        fn apply_adjoint_into(&self, input: &[f64], out: &mut [f64]) -> Result<(), OpError> {
            check_apply(self.shape(), OpDirection::Adjoint, input, out)?;
            for (o, &x) in out.iter_mut().zip(input) {
                *o = 2.0 * x;
            }
            Ok(())
        }
    }

    #[test]
    fn provided_methods_route_through_into() {
        let op = Doubler;
        assert_eq!(op.apply_forward(&[1.0, 2.0, 3.0]).unwrap(), vec![2.0, 4.0, 6.0]);
        let mut outs = vec![0.0; 6];
        op.apply_many_into(OpDirection::Forward, &[1.0, 0.0, 0.0, 0.0, 1.0, 0.0], &mut outs)
            .unwrap();
        assert_eq!(outs, vec![2.0, 0.0, 0.0, 0.0, 2.0, 0.0]);
    }

    #[test]
    fn shape_errors_are_typed() {
        let op = Doubler;
        assert_eq!(
            op.apply_forward(&[1.0]).unwrap_err(),
            OpError::InputLength { dir: OpDirection::Forward, expected: 3, got: 1 }
        );
        let mut small = [0.0; 2];
        assert_eq!(
            op.apply_forward_into(&[1.0, 2.0, 3.0], &mut small).unwrap_err(),
            OpError::OutputLength { dir: OpDirection::Forward, expected: 3, got: 2 }
        );
        let mut outs = [0.0; 3];
        assert_eq!(
            op.apply_many_into(OpDirection::Adjoint, &[0.0; 4], &mut outs).unwrap_err(),
            OpError::RaggedBatch { dir: OpDirection::Adjoint, got: 4, stride: 3 }
        );
        assert_eq!(
            op.apply_many_into(OpDirection::Forward, &[0.0; 6], &mut outs).unwrap_err(),
            OpError::BatchMismatch { dir: OpDirection::Forward, expected: 6, got: 3 }
        );
    }

    #[test]
    fn errors_format_helpfully() {
        let e = OpError::InputLength { dir: OpDirection::Forward, expected: 6, got: 5 };
        assert!(e.to_string().contains("forward input has 5"));
        let c = ConfigError::ColumnLength { expected: 12, got: 7 };
        assert!(c.to_string().contains("expected nt*nd*nm = 12"));
        let s: String = c.into();
        assert!(s.contains('7'));
    }

    #[test]
    fn trait_objects_and_references_work() {
        let op = Doubler;
        let dynop: &dyn LinearOperator = &op;
        assert_eq!(dynop.shape(), OpShape::new(3, 3));
        assert_eq!(dynop.apply_adjoint(&[1.0; 3]).unwrap(), vec![2.0; 3]);
        // The blanket &T impl lets generic consumers borrow.
        fn rows<L: LinearOperator>(l: L) -> usize {
            l.shape().rows
        }
        assert_eq!(rows(&op), 3);
        // Owned smart pointers implement the trait too — the service
        // registry relies on Arc<dyn LinearOperator + Send + Sync>.
        let boxed: Box<dyn LinearOperator> = Box::new(Doubler);
        assert_eq!(rows(&boxed), 3);
        let shared: std::sync::Arc<dyn LinearOperator + Send + Sync> = std::sync::Arc::new(Doubler);
        assert_eq!(shared.apply_forward(&[1.0; 3]).unwrap(), vec![2.0; 3]);
    }

    #[test]
    fn error_hierarchy_converts_and_chains() {
        // ConfigError lifts into OpError, and source() walks back down.
        let c = ConfigError::ZeroDimension { what: "nt" };
        let o: OpError = c.clone().into();
        assert_eq!(o, OpError::Config(c.clone()));
        assert!(o.to_string().contains("operator construction failed"));
        assert!(o.to_string().contains("nt"));
        use std::error::Error;
        let src = o.source().expect("Config wraps a source");
        assert_eq!(src.to_string(), c.to_string());
        assert!(OpError::Internal("x").source().is_none());
    }

    #[test]
    fn io_lens_by_direction() {
        let s = OpShape::new(2, 5);
        assert_eq!(s.io_lens(OpDirection::Forward), (5, 2));
        assert_eq!(s.io_lens(OpDirection::Adjoint), (2, 5));
    }
}
