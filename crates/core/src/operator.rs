//! Block lower-triangular Toeplitz operators and their frequency-domain
//! setup.
//!
//! Only the first block column of `F` is stored (Section 2.4): `N_t`
//! blocks `F_{j1} ∈ R^{N_d × N_m}`. Setup embeds `F` in a block-circulant
//! matrix by zero-padding the block column to length `2·N_t` and takes a
//! batched real-to-complex FFT along the block index, yielding `N_t + 1`
//! complex frequency matrices `F̂_k` stored column-major, ready for the
//! strided batched GEMV. Setup always runs in double precision (it is a
//! one-time cost, Section 3.2); a single-precision copy of `F̂` is
//! materialized lazily for configurations that compute phase 3 in FP32.

use fftmatvec_fft::BatchedRealFft;
use fftmatvec_numeric::{Complex, C16, C32, C64, CB16};

use crate::linop::ConfigError;

/// A block lower-triangular Toeplitz operator in FFT-ready form.
pub struct BlockToeplitzOperator {
    nd: usize,
    nm: usize,
    nt: usize,
    /// `F̂` in double precision: `nfreq` column-major `nd × nm` matrices,
    /// packed contiguously (`stride_a = nd·nm`).
    fhat: Vec<C64>,
    /// Lazily cached single-precision copy of `F̂`.
    fhat32: std::sync::OnceLock<Vec<C32>>,
    /// Lazily cached binary16 copy of `F̂` (software-emulated tier).
    fhat16: std::sync::OnceLock<Vec<C16>>,
    /// Lazily cached bfloat16 copy of `F̂` (software-emulated tier).
    fhatb16: std::sync::OnceLock<Vec<CB16>>,
    /// The first block column, kept for the direct (oracle) matvec:
    /// layout `col[(t·nd + i)·nm + k] = F_{t+1,1}[i,k]`.
    first_col: Vec<f64>,
}

impl Clone for BlockToeplitzOperator {
    /// Deep-copies the double-precision setup (`F̂` and the first block
    /// column); the lazily-cached narrow copies of `F̂` rematerialize in
    /// the clone on first use rather than being copied.
    fn clone(&self) -> Self {
        BlockToeplitzOperator {
            nd: self.nd,
            nm: self.nm,
            nt: self.nt,
            fhat: self.fhat.clone(),
            fhat32: std::sync::OnceLock::new(),
            fhat16: std::sync::OnceLock::new(),
            fhatb16: std::sync::OnceLock::new(),
            first_col: self.first_col.clone(),
        }
    }
}

impl BlockToeplitzOperator {
    /// Build from the first block column.
    ///
    /// `col` has length `nt·nd·nm`, laid out `[t][sensor i][param k]`
    /// (row-major blocks): `col[(t·nd + i)·nm + k] = F_{t+1,1}[i,k]`.
    pub fn from_first_block_column(
        nd: usize,
        nm: usize,
        nt: usize,
        col: &[f64],
    ) -> Result<Self, ConfigError> {
        for (extent, what) in [(nd, "nd"), (nm, "nm"), (nt, "nt")] {
            if extent == 0 {
                return Err(ConfigError::ZeroDimension { what });
            }
        }
        if col.len() != nt * nd * nm {
            return Err(ConfigError::ColumnLength { expected: nt * nd * nm, got: col.len() });
        }

        // Gather each (i,k) time series contiguously, zero-padded to 2·nt,
        // and FFT the whole nd·nm batch (the double-precision setup FFT of
        // Section 3.2.1, error bounded by c_F·ε_d·log2(2·N_t)). The
        // batched driver pulls its plan from the process-wide cache, so
        // this setup pass and the per-matvec pipeline share twiddles.
        let n2 = 2 * nt;
        let nfreq = nt + 1;
        let series_count = nd * nm;
        let mut padded = vec![0.0f64; series_count * n2];
        for t in 0..nt {
            for i in 0..nd {
                for k in 0..nm {
                    padded[(i * nm + k) * n2 + t] = col[(t * nd + i) * nm + k];
                }
            }
        }
        let fft = BatchedRealFft::<f64>::new(n2);
        let mut spectra = vec![Complex::zero(); series_count * nfreq];
        fft.forward_batch(&padded, &mut spectra);
        drop(padded);

        // Transpose to SBGEMV layout: per frequency, column-major nd × nm.
        // fhat[f·nd·nm + k·nd + i] = spectra[(i·nm + k)·nfreq + f].
        let mut fhat = vec![Complex::zero(); nfreq * nd * nm];
        for i in 0..nd {
            for k in 0..nm {
                let src = &spectra[(i * nm + k) * nfreq..(i * nm + k + 1) * nfreq];
                for (f, &v) in src.iter().enumerate() {
                    fhat[f * nd * nm + k * nd + i] = v;
                }
            }
        }

        Ok(BlockToeplitzOperator {
            nd,
            nm,
            nt,
            fhat,
            fhat32: std::sync::OnceLock::new(),
            fhat16: std::sync::OnceLock::new(),
            fhatb16: std::sync::OnceLock::new(),
            first_col: col.to_vec(),
        })
    }

    /// Number of sensors (block rows).
    #[inline]
    pub fn nd(&self) -> usize {
        self.nd
    }

    /// Number of spatial parameters (block columns).
    #[inline]
    pub fn nm(&self) -> usize {
        self.nm
    }

    /// Number of time blocks.
    #[inline]
    pub fn nt(&self) -> usize {
        self.nt
    }

    /// Frequency count `N_t + 1` (the SBGEMV batch size).
    #[inline]
    pub fn nfreq(&self) -> usize {
        self.nt + 1
    }

    /// The double-precision frequency matrices.
    #[inline]
    pub fn fhat(&self) -> &[C64] {
        &self.fhat
    }

    /// The single-precision frequency matrices (materialized on first
    /// use — the one-time cast for FP32 phase-3 configurations).
    pub fn fhat32(&self) -> &[C32] {
        self.fhat32.get_or_init(|| self.fhat.iter().map(|z| z.cast()).collect())
    }

    /// The binary16 frequency matrices (materialized on first use — the
    /// one-time cast for FP16 phase-3 configurations; rounding routes
    /// through `f32`, see `fftmatvec_numeric::half`).
    pub fn fhat16(&self) -> &[C16] {
        self.fhat16.get_or_init(|| self.fhat.iter().map(|z| z.cast()).collect())
    }

    /// The bfloat16 frequency matrices (materialized on first use).
    pub fn fhatb16(&self) -> &[CB16] {
        self.fhatb16.get_or_init(|| self.fhat.iter().map(|z| z.cast()).collect())
    }

    /// The stored first block column (`[t][i][k]` layout).
    #[inline]
    pub fn first_col(&self) -> &[f64] {
        &self.first_col
    }

    /// One block of the first column, as a dense row-major `nd × nm` view.
    pub fn block(&self, t: usize) -> &[f64] {
        assert!(t < self.nt);
        &self.first_col[t * self.nd * self.nm..(t + 1) * self.nd * self.nm]
    }

    /// Materialize the full dense `F` (`(nd·nt) × (nm·nt)` row-major).
    /// Test/oracle use only — quadratic in `nt`.
    pub fn dense(&self) -> Vec<f64> {
        let rows = self.nd * self.nt;
        let cols = self.nm * self.nt;
        let mut out = vec![0.0; rows * cols];
        for bi in 0..self.nt {
            for bj in 0..=bi {
                let blk = self.block(bi - bj);
                for i in 0..self.nd {
                    for k in 0..self.nm {
                        out[(bi * self.nd + i) * cols + bj * self.nm + k] = blk[i * self.nm + k];
                    }
                }
            }
        }
        out
    }

    /// Bytes of the double-precision `F̂` (the resident matrix data the
    /// bandwidth model streams in phase 3).
    pub fn fhat_bytes(&self) -> usize {
        self.fhat.len() * core::mem::size_of::<C64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fftmatvec_numeric::SplitMix64;

    fn random_operator(nd: usize, nm: usize, nt: usize, seed: u64) -> BlockToeplitzOperator {
        let mut rng = SplitMix64::new(seed);
        let mut col = vec![0.0; nt * nd * nm];
        rng.fill_uniform(&mut col, -1.0, 1.0);
        BlockToeplitzOperator::from_first_block_column(nd, nm, nt, &col).unwrap()
    }

    #[test]
    fn dimensions_and_freq_count() {
        let op = random_operator(3, 5, 8, 1);
        assert_eq!(op.nd(), 3);
        assert_eq!(op.nm(), 5);
        assert_eq!(op.nt(), 8);
        assert_eq!(op.nfreq(), 9);
        assert_eq!(op.fhat().len(), 9 * 15);
        assert_eq!(op.fhat_bytes(), 9 * 15 * 16);
    }

    #[test]
    fn rejects_bad_shapes() {
        assert!(BlockToeplitzOperator::from_first_block_column(0, 5, 8, &[]).is_err());
        assert!(BlockToeplitzOperator::from_first_block_column(3, 5, 8, &[0.0; 7]).is_err());
    }

    #[test]
    fn dc_frequency_is_block_sum() {
        // F̂_0 = Σ_t F_{t,1} (the DC bin of the padded column FFT).
        let op = random_operator(2, 3, 4, 2);
        let mut sum = [0.0; 2 * 3];
        for t in 0..4 {
            for (s, &v) in sum.iter_mut().zip(op.block(t)) {
                *s += v;
            }
        }
        for i in 0..2 {
            for k in 0..3 {
                let z = op.fhat()[k * 2 + i]; // freq 0, column-major
                assert!((z.re - sum[i * 3 + k]).abs() < 1e-12);
                assert!(z.im.abs() < 1e-12);
            }
        }
    }

    #[test]
    fn dense_is_block_lower_triangular_toeplitz() {
        let op = random_operator(2, 3, 3, 3);
        let dense = op.dense();
        let (nd, nm, nt) = (2, 3, 3);
        let cols = nm * nt;
        // Upper block triangle is zero.
        for bi in 0..nt {
            for bj in bi + 1..nt {
                for i in 0..nd {
                    for k in 0..nm {
                        assert_eq!(dense[(bi * nd + i) * cols + bj * nm + k], 0.0);
                    }
                }
            }
        }
        // Toeplitz: block (bi,bj) equals block (bi-bj, 0).
        for bi in 0..nt {
            for bj in 0..=bi {
                let blk = op.block(bi - bj);
                for i in 0..nd {
                    for k in 0..nm {
                        assert_eq!(dense[(bi * nd + i) * cols + bj * nm + k], blk[i * nm + k]);
                    }
                }
            }
        }
    }

    #[test]
    fn fhat32_is_the_rounded_fhat() {
        let op = random_operator(2, 2, 4, 4);
        let f32s = op.fhat32();
        assert_eq!(f32s.len(), op.fhat().len());
        for (a, b) in f32s.iter().zip(op.fhat()) {
            assert_eq!(a.re, b.re as f32);
            assert_eq!(a.im, b.im as f32);
        }
    }

    #[test]
    fn half_tier_fhats_are_the_rounded_fhat() {
        use fftmatvec_numeric::{bf16, f16};
        let op = random_operator(2, 3, 4, 5);
        let h = op.fhat16();
        let b = op.fhatb16();
        assert_eq!(h.len(), op.fhat().len());
        assert_eq!(b.len(), op.fhat().len());
        for ((zh, zb), z) in h.iter().zip(b).zip(op.fhat()) {
            assert_eq!(zh.re.to_bits(), f16::from_f32(z.re as f32).to_bits());
            assert_eq!(zh.im.to_bits(), f16::from_f32(z.im as f32).to_bits());
            assert_eq!(zb.re.to_bits(), bf16::from_f32(z.re as f32).to_bits());
            assert_eq!(zb.im.to_bits(), bf16::from_f32(z.im as f32).to_bits());
        }
    }
}
