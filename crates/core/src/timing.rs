//! Simulated GPU phase timings for one matvec.
//!
//! Builds one [`KernelProfile`] per pipeline phase from the problem
//! dimensions and the precision configuration, and evaluates them on a
//! [`DeviceSpec`]. This regenerates the runtime breakdowns of Figures 2
//! and 3: the SBGEMV streams the whole `F̂` (the only phase touching the
//! matrix) and dominates at the paper's shapes; FFT/IFFT and the memory
//! phases are lower-order. Reorder (TOSI↔SOTI) traffic is charged to the
//! SBGEMV phase, matching the paper's timing convention ("The SBGEMV time
//! includes the SOTI-to-TOSI and TOSI-to-SOTI times").

use fftmatvec_blas::{kernel_profile, select_kernel, GemvOp};
use fftmatvec_gpu::kernel::dtype_for;
use fftmatvec_gpu::{DeviceSpec, KernelClass, KernelProfile, Phase, PhaseTimes};
use fftmatvec_numeric::Precision;

use crate::precision::{MatvecPhase, PrecisionConfig};

/// Local problem dimensions of one GPU's share of the matvec.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MatvecDims {
    /// Local sensor count `n_d`.
    pub nd: usize,
    /// Local parameter count `n_m`.
    pub nm: usize,
    /// Timesteps `N_t` (never partitioned).
    pub nt: usize,
}

impl MatvecDims {
    pub fn new(nd: usize, nm: usize, nt: usize) -> Self {
        assert!(nd > 0 && nm > 0 && nt > 0);
        MatvecDims { nd, nm, nt }
    }

    /// The paper's single-GPU test shape (Sections 4.1.2/4.2.1).
    pub fn paper_single_gpu() -> Self {
        MatvecDims { nd: 100, nm: 5000, nt: 1000 }
    }

    /// Frequency count `N_t + 1`.
    pub fn nfreq(&self) -> usize {
        self.nt + 1
    }
}

/// Number of read+write sweeps a batched FFT of this length makes over its
/// data (shared-memory GPU FFTs of a few thousand points take ~2).
const FFT_PASSES: f64 = 2.0;

fn fft_profile(name: &'static str, n_series: usize, nt: usize, p: Precision) -> KernelProfile {
    let real_in = (n_series * 2 * nt * p.real_bytes()) as f64;
    let complex_out = (n_series * (nt + 1) * p.complex_bytes()) as f64;
    let n2 = 2 * nt;
    KernelProfile {
        name,
        class: KernelClass::Fft,
        dtype: dtype_for(true, p),
        bytes_read: FFT_PASSES / 2.0 * (real_in + complex_out),
        bytes_written: FFT_PASSES / 2.0 * (real_in + complex_out),
        flops: 2.5 * (n2 as f64) * (n2 as f64).log2() * n_series as f64,
        gridblocks: n_series as f64,
        work_bytes_per_block: (n2 * p.complex_bytes()) as f64,
        efficiency_override: None,
    }
}

/// Phase times of one matvec on one device.
///
/// `adjoint = false` models `F` (NoTrans GEMV), `adjoint = true` models
/// `F*` (ConjTrans GEMV — the kernel the paper optimized).
pub fn simulate_phases(
    dims: MatvecDims,
    cfg: PrecisionConfig,
    adjoint: bool,
    dev: &DeviceSpec,
) -> PhaseTimes {
    let (n_in, n_out, gemv_op) = if adjoint {
        (dims.nd, dims.nm, GemvOp::ConjTrans)
    } else {
        (dims.nm, dims.nd, GemvOp::NoTrans)
    };
    let nfreq = dims.nfreq();
    let p1 = cfg.phase(MatvecPhase::Pad);
    let p2 = cfg.phase(MatvecPhase::Fft);
    let p3 = cfg.phase(MatvecPhase::Sbgemv);
    let p4 = cfg.phase(MatvecPhase::Ifft);
    let p5 = cfg.phase(MatvecPhase::Unpad);

    let mut times = PhaseTimes::new();

    // Phase 1: read the double input, write the padded vector in p1
    // (casts fused — no extra traffic).
    let pad = KernelProfile::streaming(
        "pad",
        dtype_for(false, p1),
        (n_in * dims.nt * 8) as f64,
        (n_in * 2 * dims.nt * p1.real_bytes()) as f64,
    );
    times.add(Phase::Pad, pad.estimate_time(dev));

    // Phase 2: batched R2C FFT in p2.
    times.add(Phase::Fft, fft_profile("fft", n_in, dims.nt, p2).estimate_time(dev));

    // Phase 3: reorder in (SOTI→TOSI, boundary precision), SBGEMV, reorder
    // out — all charged to the SBGEMV phase.
    let b23 = p2.min(p3);
    let reorder_in = KernelProfile::streaming(
        "soti2tosi",
        dtype_for(true, b23),
        (n_in * nfreq * p2.complex_bytes()) as f64,
        (n_in * nfreq * p3.complex_bytes()) as f64,
    );
    let kernel = select_kernel(gemv_op, dims.nd, dims.nm);
    let gemv = kernel_profile(kernel, gemv_op, dtype_for(true, p3), dims.nd, dims.nm, nfreq);
    let b34 = p3.min(p4);
    let reorder_out = KernelProfile::streaming(
        "tosi2soti",
        dtype_for(true, b34),
        (n_out * nfreq * p3.complex_bytes()) as f64,
        (n_out * nfreq * p4.complex_bytes()) as f64,
    );
    times.add(
        Phase::Sbgemv,
        reorder_in.estimate_time(dev) + gemv.estimate_time(dev) + reorder_out.estimate_time(dev),
    );

    // Phase 4: batched C2R IFFT in p4.
    times.add(Phase::Ifft, fft_profile("ifft", n_out, dims.nt, p4).estimate_time(dev));

    // Phase 5: unpad to the double output through p5.
    let unpad = KernelProfile::streaming(
        "unpad",
        dtype_for(false, p5),
        (n_out * 2 * dims.nt * p4.real_bytes()) as f64,
        (n_out * dims.nt * 8) as f64,
    );
    times.add(Phase::Unpad, unpad.estimate_time(dev));

    times
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sbgemv_dominates_at_paper_shape() {
        // Figure 2: SBGEMV ≈ 92% of the runtime at N_m=5000, N_d=100,
        // N_t=1000 (it is the only phase streaming the matrix).
        let dims = MatvecDims::paper_single_gpu();
        for dev in DeviceSpec::paper_lineup() {
            let t = simulate_phases(dims, PrecisionConfig::all_double(), false, &dev);
            let frac = t.fraction(Phase::Sbgemv);
            assert!((0.80..0.99).contains(&frac), "{}: SBGEMV fraction {frac:.3}", dev.name);
        }
    }

    #[test]
    fn runtime_tracks_peak_bandwidth_ordering() {
        // Figure 2: performance "approximately correlates" with peak
        // bandwidth. MI250X is the clear laggard; MI300X and MI355X sit
        // near parity because the MI355X's ~35% SBGEMV efficiency (CDNA4
        // kernels untuned, Section 4.1.2) eats most of its 8 TB/s edge.
        let dims = MatvecDims::paper_single_gpu();
        let cfg = PrecisionConfig::all_double();
        let lineup = DeviceSpec::paper_lineup();
        let t: Vec<f64> =
            lineup.iter().map(|d| simulate_phases(dims, cfg, false, d).total()).collect();
        assert!(t[0] > 2.0 * t[1], "MI250X {} should dwarf MI300X {}", t[0], t[1]);
        assert!(t[0] > 2.0 * t[2], "MI250X {} should dwarf MI355X {}", t[0], t[2]);
        let parity = t[2] / t[1];
        assert!((0.6..1.35).contains(&parity), "MI355X/MI300X ratio {parity}");
        // MI250X-GCD double-precision matvec lands in the paper's ~5-10 ms.
        assert!(t[0] > 3e-3 && t[0] < 1.5e-2, "MI250X total {}", t[0]);
    }

    #[test]
    fn optimal_config_speedups_match_figure3() {
        let dims = MatvecDims::paper_single_gpu();
        let double = PrecisionConfig::all_double();
        let mixed = PrecisionConfig::optimal_forward();
        let speedup = |dev: &DeviceSpec| {
            simulate_phases(dims, double, false, dev).total()
                / simulate_phases(dims, mixed, false, dev).total()
        };
        // 70–95% on MI250X/MI300X; ~40% on MI355X.
        let s250 = speedup(&DeviceSpec::mi250x_gcd());
        let s300 = speedup(&DeviceSpec::mi300x());
        let s355 = speedup(&DeviceSpec::mi355x());
        assert!((1.60..2.00).contains(&s250), "MI250X speedup {s250}");
        assert!((1.70..2.00).contains(&s300), "MI300X speedup {s300}");
        assert!((1.25..1.55).contains(&s355), "MI355X speedup {s355}");
    }

    #[test]
    fn adjoint_uses_optimized_kernel_and_stays_close_to_forward() {
        // Section 4.1.2: with the optimized conjugate-transpose kernel, F
        // and F* run at similar speed.
        let dims = MatvecDims::paper_single_gpu();
        let cfg = PrecisionConfig::all_double();
        for dev in DeviceSpec::paper_lineup() {
            let f = simulate_phases(dims, cfg, false, &dev).total();
            let fs = simulate_phases(dims, cfg, true, &dev).total();
            let ratio = fs / f;
            assert!(
                (0.7..1.4).contains(&ratio),
                "{}: F*={fs:.4} F={f:.4} ratio {ratio:.2}",
                dev.name
            );
        }
    }

    #[test]
    fn single_precision_phases_get_cheaper() {
        let dims = MatvecDims::paper_single_gpu();
        let dev = DeviceSpec::mi300x();
        let td = simulate_phases(dims, PrecisionConfig::all_double(), false, &dev);
        let ts = simulate_phases(dims, PrecisionConfig::all_single(), false, &dev);
        for p in Phase::COMPUTE {
            assert!(
                ts.get(p) < td.get(p) * 1.01,
                "{}: single {} vs double {}",
                p.label(),
                ts.get(p),
                td.get(p)
            );
        }
        // Overall close to 2× (everything is bytes-bound).
        let s = td.total() / ts.total();
        assert!(s > 1.5, "all-single speedup {s}");
    }

    #[test]
    fn non_gemv_phases_are_minor_but_nonzero() {
        let dims = MatvecDims::paper_single_gpu();
        let dev = DeviceSpec::mi300x();
        let t = simulate_phases(dims, PrecisionConfig::all_double(), false, &dev);
        for p in [Phase::Pad, Phase::Fft, Phase::Ifft, Phase::Unpad] {
            assert!(t.get(p) > 0.0, "{} should cost something", p.label());
            assert!(t.fraction(p) < 0.15, "{} fraction too large", p.label());
        }
    }
}
