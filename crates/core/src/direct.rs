//! Direct (non-FFT) block-triangular Toeplitz matvec.
//!
//! The traditional baseline the paper's algorithm replaces: block
//! convolution evaluated directly, `d_i = Σ_{j ≤ i} F_{i−j+1,1} · m_j`,
//! costing `O(N_t²·N_d·N_m)` versus the FFT path's
//! `O(N_t·log N_t·(N_d+N_m) + N_t·N_d·N_m)`. Used as the correctness
//! oracle at any size and as the baseline in the crossover benches.
//!
//! Applications go through the [`LinearOperator`] trait; the `_into`
//! paths write straight into the caller's buffer and allocate nothing.

#[cfg(feature = "parallel")]
use rayon::prelude::*;

use crate::linop::{check_apply, LinearOperator, OpDirection, OpError, OpShape};
use crate::operator::BlockToeplitzOperator;

/// Direct matvec wrapper around the same operator storage.
pub struct DirectMatvec<'a> {
    op: &'a BlockToeplitzOperator,
}

impl<'a> DirectMatvec<'a> {
    pub fn new(op: &'a BlockToeplitzOperator) -> Self {
        DirectMatvec { op }
    }

    /// Flop count of the direct forward matvec (for crossover analysis).
    pub fn flops(&self) -> f64 {
        let (nd, nm, nt) = (self.op.nd() as f64, self.op.nm() as f64, self.op.nt() as f64);
        nt * (nt + 1.0) / 2.0 * nd * nm * 2.0
    }
}

impl LinearOperator for DirectMatvec<'_> {
    fn shape(&self) -> OpShape {
        OpShape::new(self.op.nd() * self.op.nt(), self.op.nm() * self.op.nt())
    }

    /// `d = F·m` by direct block convolution.
    fn apply_forward_into(&self, m: &[f64], d: &mut [f64]) -> Result<(), OpError> {
        check_apply(self.shape(), OpDirection::Forward, m, d)?;
        let (nd, nm) = (self.op.nd(), self.op.nm());
        d.fill(0.0);
        let body = |(ti, dt): (usize, &mut [f64])| {
            for tj in 0..=ti {
                let blk = self.op.block(ti - tj);
                let mj = &m[tj * nm..(tj + 1) * nm];
                for (i, di) in dt.iter_mut().enumerate() {
                    let row = &blk[i * nm..(i + 1) * nm];
                    let mut acc = 0.0;
                    for (&a, &b) in row.iter().zip(mj) {
                        acc = f64::mul_add(a, b, acc);
                    }
                    *di += acc;
                }
            }
        };
        #[cfg(feature = "parallel")]
        d.par_chunks_mut(nd).enumerate().for_each(body);
        #[cfg(not(feature = "parallel"))]
        d.chunks_mut(nd).enumerate().for_each(body);
        Ok(())
    }

    /// `m = Fᵀ·d` by direct block correlation.
    fn apply_adjoint_into(&self, d: &[f64], m: &mut [f64]) -> Result<(), OpError> {
        check_apply(self.shape(), OpDirection::Adjoint, d, m)?;
        let (nd, nm, nt) = (self.op.nd(), self.op.nm(), self.op.nt());
        m.fill(0.0);
        let body = |(tj, mt): (usize, &mut [f64])| {
            for ti in tj..nt {
                let blk = self.op.block(ti - tj);
                let di = &d[ti * nd..(ti + 1) * nd];
                for i in 0..nd {
                    let row = &blk[i * nm..(i + 1) * nm];
                    let s = di[i];
                    for (mk, &a) in mt.iter_mut().zip(row) {
                        *mk = f64::mul_add(a, s, *mk);
                    }
                }
            }
        };
        #[cfg(feature = "parallel")]
        m.par_chunks_mut(nm).enumerate().for_each(body);
        #[cfg(not(feature = "parallel"))]
        m.chunks_mut(nm).enumerate().for_each(body);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::FftMatvec;
    use fftmatvec_numeric::vecmath::rel_l2_error;
    use fftmatvec_numeric::SplitMix64;

    fn random_operator(nd: usize, nm: usize, nt: usize, seed: u64) -> BlockToeplitzOperator {
        let mut rng = SplitMix64::new(seed);
        let mut col = vec![0.0; nt * nd * nm];
        rng.fill_uniform(&mut col, -1.0, 1.0);
        BlockToeplitzOperator::from_first_block_column(nd, nm, nt, &col).unwrap()
    }

    #[test]
    fn direct_and_fft_agree_forward() {
        let op = random_operator(3, 8, 10, 1);
        let mut rng = SplitMix64::new(2);
        let mut m = vec![0.0; 8 * 10];
        rng.fill_uniform(&mut m, -1.0, 1.0);
        let direct = DirectMatvec::new(&op).apply_forward(&m).unwrap();
        let mv = FftMatvec::builder(op).build().unwrap();
        let fft = mv.apply_forward(&m).unwrap();
        assert!(rel_l2_error(&fft, &direct) < 1e-13);
    }

    #[test]
    fn direct_and_fft_agree_adjoint() {
        let op = random_operator(3, 8, 10, 3);
        let mut rng = SplitMix64::new(4);
        let mut d = vec![0.0; 3 * 10];
        rng.fill_uniform(&mut d, -1.0, 1.0);
        let direct = DirectMatvec::new(&op).apply_adjoint(&d).unwrap();
        let mv = FftMatvec::builder(op).build().unwrap();
        let fft = mv.apply_adjoint(&d).unwrap();
        assert!(rel_l2_error(&fft, &direct) < 1e-13);
    }

    #[test]
    fn direct_adjoint_dot_consistency() {
        let op = random_operator(2, 5, 7, 5);
        let mut rng = SplitMix64::new(6);
        let mut m = vec![0.0; 5 * 7];
        let mut d = vec![0.0; 2 * 7];
        rng.fill_uniform(&mut m, -1.0, 1.0);
        rng.fill_uniform(&mut d, -1.0, 1.0);
        let dm = DirectMatvec::new(&op);
        let fm = dm.apply_forward(&m).unwrap();
        let fsd = dm.apply_adjoint(&d).unwrap();
        let lhs: f64 = fm.iter().zip(&d).map(|(a, b)| a * b).sum();
        let rhs: f64 = m.iter().zip(&fsd).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-11 * lhs.abs().max(1.0));
    }

    #[test]
    fn shape_and_length_errors() {
        let op = random_operator(2, 3, 4, 9);
        let dm = DirectMatvec::new(&op);
        assert_eq!(dm.shape(), OpShape::new(8, 12));
        assert!(matches!(dm.apply_forward(&[0.0; 5]), Err(OpError::InputLength { .. })));
        let mut out = [0.0; 5];
        assert!(matches!(
            dm.apply_adjoint_into(&[0.0; 8], &mut out),
            Err(OpError::OutputLength { .. })
        ));
    }

    #[test]
    fn flops_formula() {
        let op = random_operator(2, 3, 4, 7);
        // nt(nt+1)/2 = 10 blocks, each 2·nd·nm = 12 flops.
        assert_eq!(DirectMatvec::new(&op).flops(), 120.0);
    }
}
