//! Pareto-front analysis of mixed-precision configurations
//! (Section 3.2, applied in Section 4.2).
//!
//! Every configuration is a point in (time, relative error) space; the
//! Pareto front is the set of non-dominated points. For a given error
//! tolerance — set from sensor precision and noise level in the inverse-
//! problem context — the optimal configuration is the fastest point on or
//! under the tolerance.

use crate::linop::{ConfigurableOperator, OpDirection, OpError};
use crate::precision::PrecisionConfig;
use fftmatvec_numeric::vecmath::rel_l2_error;

/// One measured configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ParetoPoint {
    /// The five-phase precision assignment.
    pub config: PrecisionConfig,
    /// Matvec time (seconds — simulated GPU or measured wall clock).
    pub time: f64,
    /// Relative ℓ2 error versus the all-double baseline.
    pub rel_error: f64,
}

impl ParetoPoint {
    /// Does `self` dominate `other` (no worse in both, better in one)?
    pub fn dominates(&self, other: &ParetoPoint) -> bool {
        (self.time <= other.time && self.rel_error <= other.rel_error)
            && (self.time < other.time || self.rel_error < other.rel_error)
    }
}

/// Extract the Pareto front (minimizing both time and error), sorted by
/// increasing time. Among equal (time, error) pairs the first occurrence
/// is kept.
pub fn pareto_front(points: &[ParetoPoint]) -> Vec<ParetoPoint> {
    let mut sorted: Vec<ParetoPoint> = points.to_vec();
    sorted.sort_by(|a, b| a.time.total_cmp(&b.time).then(a.rel_error.total_cmp(&b.rel_error)));
    let mut front: Vec<ParetoPoint> = Vec::new();
    let mut best_err = f64::INFINITY;
    for p in sorted {
        if p.rel_error < best_err {
            best_err = p.rel_error;
            front.push(p);
        }
    }
    // Sorted by time ascending; errors strictly decreasing along the front.
    front
}

/// The fastest configuration whose error is at or below `tolerance`
/// (the paper's selection rule with tolerance 1e-7).
///
/// Configurations within 1% of the best time are treated as tied — a
/// memory phase in a narrow precision saves almost nothing when the
/// adjacent compute phase already runs narrow (its cast happens either
/// way). Ties break toward the *fewest* below-double phases, then the
/// lower error: the most conservative configuration at the same speed,
/// which is how the paper's front ends up at `dssdd` rather than `sssdd`
/// (and, on the extended lattice, not at a gratuitous `hssdd`).
pub fn optimal_for_tolerance(points: &[ParetoPoint], tolerance: f64) -> Option<ParetoPoint> {
    let admissible: Vec<&ParetoPoint> =
        points.iter().filter(|p| p.rel_error <= tolerance).collect();
    let best_time = admissible.iter().map(|p| p.time).min_by(f64::total_cmp)?;
    admissible
        .into_iter()
        .filter(|p| p.time <= best_time * 1.01)
        .min_by(|a, b| {
            a.config
                .narrow_count()
                .cmp(&b.config.narrow_count())
                .then(a.rel_error.total_cmp(&b.rel_error))
                .then(a.time.total_cmp(&b.time))
        })
        .copied()
}

/// Speedup of each point against a baseline time.
pub fn speedup(baseline_time: f64, p: &ParetoPoint) -> f64 {
    baseline_time / p.time
}

/// Measured relative matvec errors of `configs` against the all-double
/// baseline **in the requested direction**, reusing one operator — for
/// **any** [`ConfigurableOperator`] realization (the single-rank
/// pipeline, the distributed matvec, a future GPU backend). The
/// operator's original configuration is restored afterwards, on the
/// error paths too.
///
/// The direction matters: `F` and `F*` see different SBGEMV reduction
/// lengths (`n_m` vs `n_d`), so a configuration's error differs between
/// them — an autotuner validating an adjoint budget against forward
/// measurements would trust the wrong Eq. 6 side.
///
/// An identically-zero all-double baseline makes every relative error
/// `0/0 = NaN`; that degenerate case is reported as
/// [`OpError::DegenerateBaseline`] instead of producing points that
/// [`optimal_for_tolerance`] would silently drop.
pub fn error_sweep(
    op: &mut dyn ConfigurableOperator,
    dir: OpDirection,
    configs: &[PrecisionConfig],
    input: &[f64],
) -> Result<Vec<f64>, OpError> {
    let restore = op.config();
    let run = |op: &mut dyn ConfigurableOperator| -> Result<Vec<f64>, OpError> {
        op.set_config(PrecisionConfig::all_double());
        let baseline = match dir {
            OpDirection::Forward => op.apply_forward(input)?,
            OpDirection::Adjoint => op.apply_adjoint(input)?,
        };
        if baseline.iter().all(|&x| x == 0.0) {
            return Err(OpError::DegenerateBaseline { dir });
        }
        let mut errors = Vec::with_capacity(configs.len());
        for &cfg in configs {
            op.set_config(cfg);
            let y = match dir {
                OpDirection::Forward => op.apply_forward(input)?,
                OpDirection::Adjoint => op.apply_adjoint(input)?,
            };
            errors.push(rel_l2_error(&y, &baseline));
        }
        Ok(errors)
    };
    let result = run(op);
    op.set_config(restore);
    result
}

/// Full sweep: pair measured errors (via [`error_sweep`]) with
/// caller-supplied per-configuration times into [`ParetoPoint`]s, ready
/// for [`pareto_front`] / [`optimal_for_tolerance`].
pub fn sweep_points(
    op: &mut dyn ConfigurableOperator,
    dir: OpDirection,
    candidates: &[(PrecisionConfig, f64)],
    input: &[f64],
) -> Result<Vec<ParetoPoint>, OpError> {
    let configs: Vec<PrecisionConfig> = candidates.iter().map(|&(c, _)| c).collect();
    let errors = error_sweep(op, dir, &configs, input)?;
    Ok(candidates
        .iter()
        .zip(errors)
        .map(|(&(config, time), rel_error)| ParetoPoint { config, time, rel_error })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(cfg: &str, time: f64, err: f64) -> ParetoPoint {
        ParetoPoint { config: cfg.parse().unwrap(), time, rel_error: err }
    }

    #[test]
    fn domination() {
        let a = pt("ddddd", 1.0, 0.0);
        let b = pt("sdddd", 1.0, 1e-7);
        let c = pt("dssdd", 0.5, 1e-8);
        assert!(a.dominates(&b));
        assert!(!b.dominates(&a));
        assert!(c.dominates(&b));
        assert!(!a.dominates(&a), "a point never dominates itself");
    }

    #[test]
    fn front_extraction() {
        let points = vec![
            pt("ddddd", 1.00, 0.0),
            pt("dssdd", 0.55, 5e-8),
            pt("sssss", 0.45, 3e-6),
            pt("sdddd", 1.00, 1e-7), // dominated by ddddd
            pt("ddsdd", 0.60, 5e-8), // dominated by dssdd
        ];
        let front = pareto_front(&points);
        let names: Vec<String> = front.iter().map(|p| p.config.to_string()).collect();
        assert_eq!(names, vec!["sssss", "dssdd", "ddddd"]);
        // Errors strictly decrease along increasing time.
        for w in front.windows(2) {
            assert!(w[0].time <= w[1].time);
            assert!(w[0].rel_error > w[1].rel_error);
        }
    }

    #[test]
    fn tolerance_selection_matches_paper_logic() {
        let points = vec![pt("ddddd", 1.00, 0.0), pt("dssdd", 0.55, 5e-8), pt("sssss", 0.45, 3e-6)];
        // Tolerance 1e-7: all-single is too lossy, dssdd is the fastest
        // admissible — the paper's conclusion.
        let best = optimal_for_tolerance(&points, 1e-7).unwrap();
        assert_eq!(best.config.to_string(), "dssdd");
        // Loose tolerance admits all-single.
        let loose = optimal_for_tolerance(&points, 1e-5).unwrap();
        assert_eq!(loose.config.to_string(), "sssss");
        // Impossible tolerance: only exact baseline qualifies.
        let exact = optimal_for_tolerance(&points, 0.0).unwrap();
        assert_eq!(exact.config.to_string(), "ddddd");
    }

    #[test]
    fn four_tier_front_and_selection() {
        // Opening the lattice turns the two-point trade-off into a real
        // frontier: each tier buys speed at an error cost.
        let points = vec![
            pt("ddddd", 1.00, 0.0),
            pt("dssdd", 0.55, 5e-8),
            pt("sssss", 0.45, 3e-6),
            pt("hhhhh", 0.30, 2e-3),
            pt("bbbbb", 0.28, 2e-2),
        ];
        let front = pareto_front(&points);
        let names: Vec<String> = front.iter().map(|p| p.config.to_string()).collect();
        assert_eq!(names, vec!["bbbbb", "hhhhh", "sssss", "dssdd", "ddddd"]);
        assert_eq!(optimal_for_tolerance(&points, 1e-2).unwrap().config.to_string(), "hhhhh");
        assert_eq!(optimal_for_tolerance(&points, 1e-1).unwrap().config.to_string(), "bbbbb");
        // A gratuitous narrow memory phase at tied speed loses to the
        // conservative pick (narrow_count tie-break).
        let tied = vec![pt("dssdd", 0.55, 5e-8), pt("hssdd", 0.548, 6e-8)];
        assert_eq!(optimal_for_tolerance(&tied, 1e-7).unwrap().config.to_string(), "dssdd");
    }

    #[test]
    fn empty_tolerance_set() {
        let points = vec![pt("sssss", 0.4, 1e-3)];
        assert!(optimal_for_tolerance(&points, 1e-9).is_none());
    }

    #[test]
    fn speedup_helper() {
        let p = pt("dssdd", 0.5, 1e-8);
        assert!((speedup(1.0, &p) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn front_of_empty_and_singleton() {
        assert!(pareto_front(&[]).is_empty());
        let single = vec![pt("ddddd", 1.0, 0.0)];
        assert_eq!(pareto_front(&single).len(), 1);
    }

    #[test]
    fn sweep_runs_against_any_configurable_operator() {
        use crate::operator::BlockToeplitzOperator;
        use crate::pipeline::FftMatvec;
        use fftmatvec_numeric::SplitMix64;

        let (nd, nm, nt) = (2usize, 8usize, 8usize);
        let mut rng = SplitMix64::new(21);
        let mut col = vec![0.0; nt * nd * nm];
        rng.fill_uniform(&mut col, 0.0, 1.0);
        let op = BlockToeplitzOperator::from_first_block_column(nd, nm, nt, &col).unwrap();
        let mut m = vec![0.0; nm * nt];
        rng.fill_uniform_stuffed(&mut m, 0.0, 1.0);

        let mut mv =
            FftMatvec::builder(op).precision(PrecisionConfig::optimal_forward()).build().unwrap();
        let candidates = [
            (PrecisionConfig::all_double(), 1.0),
            (PrecisionConfig::optimal_forward(), 0.55),
            (PrecisionConfig::all_single(), 0.45),
        ];
        let points = sweep_points(&mut mv, OpDirection::Forward, &candidates, &m).unwrap();
        assert_eq!(points.len(), 3);
        assert_eq!(points[0].rel_error, 0.0, "all-double baseline has zero error");
        assert!(points[1].rel_error > 0.0 && points[2].rel_error >= points[1].rel_error / 2.0);
        // The operator's own configuration is restored.
        assert_eq!(mv.config(), PrecisionConfig::optimal_forward());
        // The sweep surfaces apply errors instead of panicking — and still
        // restores the configuration on the way out.
        let r =
            error_sweep(&mut mv, OpDirection::Forward, &[PrecisionConfig::all_double()], &m[1..]);
        assert!(r.is_err());
        assert_eq!(mv.config(), PrecisionConfig::optimal_forward());
    }

    #[test]
    fn sweep_measures_the_requested_direction() {
        use crate::operator::BlockToeplitzOperator;
        use crate::pipeline::FftMatvec;
        use fftmatvec_numeric::SplitMix64;

        // Regression for the direction bug: the sweep hard-coded
        // `apply_forward`, so on a non-square operator an adjoint sweep
        // was *impossible* — the adjoint-sized input went to the forward
        // operator and bounced with `InputLength`. With nd = 2 ≠ nm = 256
        // the two sides cannot be confused.
        let (nd, nm, nt) = (2usize, 256usize, 8usize);
        let mut rng = SplitMix64::new(33);
        let mut col = vec![0.0; nt * nd * nm];
        rng.fill_uniform(&mut col, 0.5, 1.0);
        let op = BlockToeplitzOperator::from_first_block_column(nd, nm, nt, &col).unwrap();
        let mut mv = FftMatvec::builder(op).build().unwrap();
        let restore = mv.config();

        let cfg: PrecisionConfig = "ddsdd".parse().unwrap();
        let mut d = vec![0.0; nd * nt];
        rng.fill_uniform_stuffed(&mut d, 0.5, 1.0);
        // The adjoint sweep accepts the adjoint-sized input (the old
        // direction-blind sweep rejected this exact call)...
        let adj = error_sweep(&mut mv, OpDirection::Adjoint, &[cfg], &d).unwrap()[0];
        assert!(adj > 0.0 && adj.is_finite());
        // ...and lengths are validated against the *requested* direction,
        // not forward unconditionally.
        let err = error_sweep(&mut mv, OpDirection::Forward, &[cfg], &d).unwrap_err();
        assert_eq!(
            err,
            OpError::InputLength { dir: OpDirection::Forward, expected: nm * nt, got: nd * nt }
        );
        assert_eq!(mv.config(), restore, "restore discipline on the length-error path");

        let mut m = vec![0.0; nm * nt];
        rng.fill_uniform_stuffed(&mut m, 0.5, 1.0);
        let fwd = error_sweep(&mut mv, OpDirection::Forward, &[cfg], &m).unwrap()[0];
        assert!(fwd > 0.0 && fwd.is_finite());
    }

    #[test]
    fn zero_baseline_is_a_typed_error_not_nan_points() {
        use crate::operator::BlockToeplitzOperator;
        use crate::pipeline::FftMatvec;

        // An all-zero operator maps every input to zero: the all-double
        // baseline is degenerate and relative error is undefined.
        let (nd, nm, nt) = (2usize, 3usize, 4usize);
        let col = vec![0.0; nt * nd * nm];
        let op = BlockToeplitzOperator::from_first_block_column(nd, nm, nt, &col).unwrap();
        let mut mv =
            FftMatvec::builder(op).precision(PrecisionConfig::optimal_forward()).build().unwrap();
        let input = vec![1.0; nm * nt];
        let dinput = vec![1.0; nd * nt];
        for dir in [OpDirection::Forward, OpDirection::Adjoint] {
            let x = if dir == OpDirection::Forward { &input } else { &dinput };
            let err = error_sweep(&mut mv, dir, &[PrecisionConfig::all_single()], x).unwrap_err();
            assert_eq!(err, OpError::DegenerateBaseline { dir });
        }
        // Restore discipline holds on this error path too.
        assert_eq!(mv.config(), PrecisionConfig::optimal_forward());
    }
}
