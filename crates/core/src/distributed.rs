//! The distributed FFTMatvec over a 2-D process grid.
//!
//! Grid rows partition the sensors, columns partition the parameters
//! (Section 2.4): rank `(r, c)` owns the local operator block with
//! `n_d = ⌈N_d/p_r⌉` sensors and `n_m = ⌈N_m/p_c⌉` parameters. Per-rank
//! arithmetic is real (each simulated rank runs the full mixed-precision
//! pipeline on its slice); the inter-rank collectives move real data in
//! the configured precision, and wall time is modeled as
//! `max(rank compute) + comm model`.
//!
//! F matvec: the input is column-partitioned, so with `p_r = 1` phase 1
//! needs no communication; with `p_r > 1` each column allgathers its
//! slice. Phase 5 tree-reduces partial outputs across each grid row. The
//! F* matvec mirrors this (broadcast across rows, reduce down columns).
//!
//! Like the single-rank pipeline, applications go through the
//! [`LinearOperator`] trait: the `_into` paths stage per-rank slices,
//! partial outputs, and the reduction's rounded communication buffers in
//! a pooled workspace, so repeated applies allocate nothing after
//! warm-up.

#[cfg(feature = "parallel")]
use rayon::prelude::*;

use std::sync::{Mutex, MutexGuard, PoisonError};

use fftmatvec_backend::DeviceBackend;
use fftmatvec_comm::{NetworkModel, ProcessGrid};
use fftmatvec_gpu::{DeviceSpec, Phase, PhaseTimes};
use fftmatvec_numeric::{Precision, Real, RealBuffer};

use crate::linop::{
    check_apply, ConfigError, ConfigurableOperator, LinearOperator, OpDirection, OpError, OpShape,
};
use crate::operator::BlockToeplitzOperator;
use crate::pipeline::FftMatvec;
use crate::precision::{MatvecPhase, PrecisionConfig};
use crate::timing::{simulate_phases, MatvecDims};

/// Pooled staging buffers for one distributed apply.
struct DistWorkspace {
    /// Per-rank input slices (the phase-1 scatter/broadcast buffers).
    rank_in: Vec<Vec<f64>>,
    /// Per-rank pipeline outputs (the phase-5 reduction inputs).
    partials: Vec<Vec<f64>>,
    /// Flat rounded communication buffer the tree reduction runs in.
    reduce: RealBuffer,
}

impl DistWorkspace {
    fn empty() -> Self {
        DistWorkspace {
            rank_in: Vec::new(),
            partials: Vec::new(),
            reduce: RealBuffer::F64(Vec::new()),
        }
    }
}

/// RAII guard returning a [`DistWorkspace`] to its owner's pool on drop.
struct PooledDistWorkspace<'a> {
    owner: &'a DistributedFftMatvec,
    ws: DistWorkspace,
}

impl std::ops::Deref for PooledDistWorkspace<'_> {
    type Target = DistWorkspace;
    fn deref(&self) -> &DistWorkspace {
        &self.ws
    }
}

impl std::ops::DerefMut for PooledDistWorkspace<'_> {
    fn deref_mut(&mut self) -> &mut DistWorkspace {
        &mut self.ws
    }
}

impl Drop for PooledDistWorkspace<'_> {
    fn drop(&mut self) {
        let ws = std::mem::replace(&mut self.ws, DistWorkspace::empty());
        self.owner.pool().push(ws);
    }
}

/// FFTMatvec partitioned over a process grid, all ranks in-process.
pub struct DistributedFftMatvec {
    grid: ProcessGrid,
    nd: usize,
    nm: usize,
    nt: usize,
    /// Per-rank pipelines, indexed by grid rank (column-major).
    ranks: Vec<FftMatvec>,
    workspace: Mutex<Vec<DistWorkspace>>,
}

impl std::fmt::Debug for DistributedFftMatvec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DistributedFftMatvec")
            .field("grid", &(self.grid.rows, self.grid.cols))
            .field("nd", &self.nd)
            .field("nm", &self.nm)
            .field("nt", &self.nt)
            .field("config", &self.config().to_string())
            .finish_non_exhaustive()
    }
}

impl DistributedFftMatvec {
    /// Partition a global operator (given by its first block column, in
    /// the same `[t][i][k]` layout as
    /// [`BlockToeplitzOperator::from_first_block_column`]) over `grid`.
    pub fn from_global(
        nd: usize,
        nm: usize,
        nt: usize,
        col: &[f64],
        grid: ProcessGrid,
        cfg: PrecisionConfig,
    ) -> Result<Self, ConfigError> {
        if col.len() != nt * nd * nm {
            return Err(ConfigError::ColumnLength { expected: nt * nd * nm, got: col.len() });
        }
        if grid.rows > nd {
            return Err(ConfigError::GridOversubscribed {
                axis: "rows",
                ranks: grid.rows,
                extent: nd,
            });
        }
        if grid.cols > nm {
            return Err(ConfigError::GridOversubscribed {
                axis: "cols",
                ranks: grid.cols,
                extent: nm,
            });
        }
        let mut ranks = Vec::with_capacity(grid.size());
        for rank in 0..grid.size() {
            let (r, c) = grid.coords_of(rank);
            let ri = grid.sensor_range(nd, r);
            let ci = grid.param_range(nm, c);
            let (ndl, nml) = (ri.len(), ci.len());
            let mut local = vec![0.0; nt * ndl * nml];
            for t in 0..nt {
                for (ii, i) in ri.clone().enumerate() {
                    let src = &col[(t * nd + i) * nm + ci.start..(t * nd + i) * nm + ci.end];
                    local[(t * ndl + ii) * nml..(t * ndl + ii) * nml + nml].copy_from_slice(src);
                }
            }
            let op = BlockToeplitzOperator::from_first_block_column(ndl, nml, nt, &local)?;
            ranks.push(FftMatvec::builder(op).precision(cfg).build()?);
        }
        Ok(DistributedFftMatvec { grid, nd, nm, nt, ranks, workspace: Mutex::new(Vec::new()) })
    }

    /// The process grid.
    pub fn grid(&self) -> ProcessGrid {
        self.grid
    }

    /// Global dimensions `(N_d, N_m, N_t)`.
    pub fn dims(&self) -> (usize, usize, usize) {
        (self.nd, self.nm, self.nt)
    }

    /// Change every rank's precision configuration (each rank rebuilds
    /// only the FFT engines whose tier actually changed, see
    /// [`FftMatvec::set_config`]).
    pub fn set_config(&mut self, cfg: PrecisionConfig) {
        for r in &mut self.ranks {
            r.set_config(cfg);
        }
    }

    /// Current configuration.
    pub fn config(&self) -> PrecisionConfig {
        self.ranks[0].config()
    }

    /// The execution backend the per-rank pipelines were built for
    /// (every rank resolves the same selection, so rank 0 speaks for
    /// all).
    pub fn backend(&self) -> crate::pipeline::PipelineBackend {
        self.ranks[0].backend()
    }

    /// Rank 0's device handle — the one the phase-5 tree reductions
    /// dispatch through.
    fn device(&self) -> &dyn DeviceBackend {
        self.ranks[0].device().as_ref()
    }

    fn pool(&self) -> MutexGuard<'_, Vec<DistWorkspace>> {
        self.workspace.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Check out a pooled workspace behind an RAII guard — like the
    /// single-rank pipeline's pool, the guard returns the buffers on drop
    /// so every exit path (including `?` returns) preserves the
    /// zero-allocation steady state.
    fn checkout(&self) -> PooledDistWorkspace<'_> {
        let mut ws = self.pool().pop().unwrap_or_else(DistWorkspace::empty);
        let size = self.grid.size();
        if ws.rank_in.len() != size {
            ws.rank_in.resize_with(size, Vec::new);
            ws.partials.resize_with(size, Vec::new);
        }
        PooledDistWorkspace { owner: self, ws }
    }

    /// Run every rank's pipeline over the staged inputs in `ws.rank_in`,
    /// writing into `ws.partials`. Per-rank shapes are struct invariants,
    /// so rank applies cannot fail; a failure anyway is surfaced as
    /// [`OpError::Internal`] rather than a panic.
    fn run_ranks(&self, dir: OpDirection, ws: &mut DistWorkspace) -> Result<(), OpError> {
        for (rank, out) in ws.partials.iter_mut().enumerate() {
            let (in_len, out_len) = self.ranks[rank].shape().io_lens(dir);
            debug_assert_eq!(ws.rank_in[rank].len(), in_len);
            // Fully overwritten by the rank apply below — no clear, so
            // steady-state resizes are O(1).
            out.resize(out_len, 0.0);
        }
        #[cfg(feature = "parallel")]
        {
            use std::sync::atomic::{AtomicBool, Ordering};
            let failed = AtomicBool::new(false);
            let rank_in = &ws.rank_in;
            ws.partials.par_iter_mut().enumerate().for_each(|(rank, out)| {
                if self.ranks[rank].apply_into(dir, &rank_in[rank], out).is_err() {
                    failed.store(true, Ordering::Relaxed);
                }
            });
            if failed.load(Ordering::Relaxed) {
                return Err(OpError::Internal("distributed rank apply failed"));
            }
        }
        #[cfg(not(feature = "parallel"))]
        for (rank, out) in ws.partials.iter_mut().enumerate() {
            self.ranks[rank].apply_into(dir, &ws.rank_in[rank], out)?;
        }
        Ok(())
    }

    /// Modeled matvec time on `dev` ranks under `net`: slowest rank's
    /// compute plus the grid's communication.
    pub fn simulate(&self, dev: &DeviceSpec, net: &NetworkModel, adjoint: bool) -> PhaseTimes {
        // Rank (0,0) owns the ⌈·⌉ chunk sizes — the slowest rank.
        let ndl = self.grid.sensor_range(self.nd, 0).len();
        let nml = self.grid.param_range(self.nm, 0).len();
        let cfg = self.config();
        let mut t = simulate_phases(MatvecDims::new(ndl, nml, self.nt), cfg, adjoint, dev);

        let p1 = cfg.phase(MatvecPhase::Pad);
        let p5 = cfg.phase(MatvecPhase::Unpad);
        let m_col_bytes = (nml * self.nt * p1.real_bytes()) as f64;
        let d_row_bytes = (ndl * self.nt * p5.real_bytes()) as f64;
        let comm = if adjoint {
            net.adjoint_matvec_comm(&self.grid, m_col_bytes, d_row_bytes)
        } else {
            net.forward_matvec_comm(&self.grid, m_col_bytes, d_row_bytes)
        };
        t.add(Phase::Comm, comm);
        t
    }
}

impl LinearOperator for DistributedFftMatvec {
    fn shape(&self) -> OpShape {
        OpShape::new(self.nd * self.nt, self.nm * self.nt)
    }

    /// `d = F·m` with global TOSI vectors.
    fn apply_forward_into(&self, m: &[f64], d: &mut [f64]) -> Result<(), OpError> {
        check_apply(self.shape(), OpDirection::Forward, m, d)?;
        let mut guard = self.checkout();
        // Reborrow the plain workspace so field borrows split (the guard's
        // Deref would otherwise pin the whole struct).
        let ws: &mut DistWorkspace = &mut guard;
        // Scatter: column c's slice, replicated down its rows (the
        // phase-1 broadcast/allgather).
        for rank in 0..self.grid.size() {
            let (_, c) = self.grid.coords_of(rank);
            let ci = self.grid.param_range(self.nm, c);
            let mc = &mut ws.rank_in[rank];
            // Every element is written by the copy loop below.
            mc.resize(ci.len() * self.nt, 0.0);
            for t in 0..self.nt {
                mc[t * ci.len()..(t + 1) * ci.len()]
                    .copy_from_slice(&m[t * self.nm + ci.start..t * self.nm + ci.end]);
            }
        }
        self.run_ranks(OpDirection::Forward, ws)?;

        // Phase 5: tree-reduce each grid row's partials across columns in
        // the phase-5 precision, then place into the global output.
        let p5 = self.config().phase(MatvecPhase::Unpad);
        for r in 0..self.grid.rows {
            let ri = self.grid.sensor_range(self.nd, r);
            let ndl = ri.len();
            let len = ndl * self.nt;
            reduce_in_precision(
                self.device(),
                &ws.partials,
                |c| self.grid.rank_of(r, c),
                self.grid.cols,
                len,
                p5,
                &mut ws.reduce,
            )?;
            place_reduced(&ws.reduce, self.nt, ndl, self.nd, ri.start, d);
        }
        Ok(())
    }

    /// `m = F*·d` with global TOSI vectors.
    fn apply_adjoint_into(&self, d: &[f64], m: &mut [f64]) -> Result<(), OpError> {
        check_apply(self.shape(), OpDirection::Adjoint, d, m)?;
        let mut guard = self.checkout();
        let ws: &mut DistWorkspace = &mut guard;
        for rank in 0..self.grid.size() {
            let (r, _) = self.grid.coords_of(rank);
            let ri = self.grid.sensor_range(self.nd, r);
            let dr = &mut ws.rank_in[rank];
            // Every element is written by the copy loop below.
            dr.resize(ri.len() * self.nt, 0.0);
            for t in 0..self.nt {
                dr[t * ri.len()..(t + 1) * ri.len()]
                    .copy_from_slice(&d[t * self.nd + ri.start..t * self.nd + ri.end]);
            }
        }
        self.run_ranks(OpDirection::Adjoint, ws)?;

        let p5 = self.config().phase(MatvecPhase::Unpad);
        for c in 0..self.grid.cols {
            let ci = self.grid.param_range(self.nm, c);
            let nml = ci.len();
            let len = nml * self.nt;
            reduce_in_precision(
                self.device(),
                &ws.partials,
                |r| self.grid.rank_of(r, c),
                self.grid.rows,
                len,
                p5,
                &mut ws.reduce,
            )?;
            place_reduced(&ws.reduce, self.nt, nml, self.nm, ci.start, m);
        }
        Ok(())
    }
}

impl ConfigurableOperator for DistributedFftMatvec {
    fn config(&self) -> PrecisionConfig {
        DistributedFftMatvec::config(self)
    }

    fn set_config(&mut self, cfg: PrecisionConfig) {
        DistributedFftMatvec::set_config(self, cfg);
    }
}

/// Scatter one row/column's reduced block (`reduce[..nt·local]`, local
/// TOSI layout `[t][local]`) into the global TOSI output: element
/// `[t][ii]` lands at `out[t·global + offset + ii]` (the partitioned
/// axis is a contiguous range, so `offset` is its start). Variant
/// dispatch happens once per block, not per element.
fn place_reduced(
    reduce: &RealBuffer,
    nt: usize,
    local: usize,
    global: usize,
    offset: usize,
    out: &mut [f64],
) {
    fn inner<T: Real>(
        v: &[T],
        nt: usize,
        local: usize,
        global: usize,
        off: usize,
        out: &mut [f64],
    ) {
        for t in 0..nt {
            let src = &v[t * local..(t + 1) * local];
            let dst = &mut out[t * global + off..t * global + off + local];
            for (o, &x) in dst.iter_mut().zip(src) {
                *o = x.to_f64();
            }
        }
    }
    match reduce {
        RealBuffer::F16(v) => inner(v, nt, local, global, offset, out),
        RealBuffer::BF16(v) => inner(v, nt, local, global, offset, out),
        RealBuffer::F32(v) => inner(v, nt, local, global, offset, out),
        RealBuffer::F64(v) => inner(v, nt, local, global, offset, out),
    }
}

/// Tree-reduce the partial vectors of one grid row/column in precision
/// `p`, leaving the result (as doubles) in `scratch[..len]`. Below double
/// precision the inputs are rounded first (the cast fused into the
/// communication buffers), summed pairwise in the tier's storage
/// rounding — exactly the arithmetic a reduced-precision RCCL reduction
/// performs. The summation tree runs through the pipeline's
/// [`DeviceBackend::tree_reduce`] primitive, whose CPU implementations
/// use `fftmatvec_comm::collectives::tree_reduce_sum_in_place` — the
/// in-place sibling of `tree_reduce_sum`, so the association matches the
/// collective exactly while running in a flat reused buffer that
/// allocates nothing after warm-up.
fn reduce_in_precision(
    device: &dyn DeviceBackend,
    partials: &[Vec<f64>],
    rank_of: impl Fn(usize) -> usize,
    nparts: usize,
    len: usize,
    p: Precision,
    scratch: &mut RealBuffer,
) -> Result<(), OpError> {
    scratch.reset_for_overwrite(p, nparts * len);
    fn stage<T: Real>(
        partials: &[Vec<f64>],
        rank_of: &dyn Fn(usize) -> usize,
        nparts: usize,
        len: usize,
        flat: &mut [T],
    ) {
        for part in 0..nparts {
            let src = &partials[rank_of(part)];
            for (dst, &x) in flat[part * len..(part + 1) * len].iter_mut().zip(src) {
                *dst = T::from_f64(x);
            }
        }
    }
    match scratch {
        RealBuffer::F16(v) => stage(partials, &rank_of, nparts, len, v),
        RealBuffer::BF16(v) => stage(partials, &rank_of, nparts, len, v),
        RealBuffer::F32(v) => stage(partials, &rank_of, nparts, len, v),
        RealBuffer::F64(v) => stage(partials, &rank_of, nparts, len, v),
    }
    device.tree_reduce(scratch, len)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fftmatvec_comm::collectives::tree_reduce_sum;
    use fftmatvec_numeric::vecmath::rel_l2_error;
    use fftmatvec_numeric::SplitMix64;

    fn global_col(nd: usize, nm: usize, nt: usize, seed: u64) -> Vec<f64> {
        let mut rng = SplitMix64::new(seed);
        let mut col = vec![0.0; nt * nd * nm];
        rng.fill_uniform(&mut col, -1.0, 1.0);
        col
    }

    fn single_rank_reference(
        nd: usize,
        nm: usize,
        nt: usize,
        col: &[f64],
        m: &[f64],
        adjoint: bool,
    ) -> Vec<f64> {
        let op = BlockToeplitzOperator::from_first_block_column(nd, nm, nt, col).unwrap();
        let mv = FftMatvec::builder(op).build().unwrap();
        if adjoint {
            mv.apply_adjoint(m).unwrap()
        } else {
            mv.apply_forward(m).unwrap()
        }
    }

    #[test]
    fn in_place_tree_matches_collective_tree() {
        // The flat reused-buffer reduction must reproduce the comm
        // collective's association exactly, for every rank count.
        let mut rng = SplitMix64::new(11);
        for nparts in 1..=9usize {
            let len = 7;
            let parts: Vec<Vec<f64>> =
                (0..nparts).map(|_| (0..len).map(|_| rng.uniform(-1.0, 1.0)).collect()).collect();
            let want = tree_reduce_sum(&parts);
            let mut scratch = RealBuffer::F64(Vec::new());
            let device = fftmatvec_backend::CpuPool::new();
            reduce_in_precision(
                &device,
                &parts,
                |i| i,
                nparts,
                len,
                Precision::Double,
                &mut scratch,
            )
            .unwrap();
            for (i, &w) in want.iter().enumerate() {
                assert_eq!(scratch.get(i), w, "nparts={nparts} i={i}");
            }
        }
    }

    #[test]
    fn distributed_forward_matches_single_rank() {
        let (nd, nm, nt) = (4usize, 12usize, 6usize);
        let col = global_col(nd, nm, nt, 1);
        let mut rng = SplitMix64::new(2);
        let mut m = vec![0.0; nm * nt];
        rng.fill_uniform(&mut m, -1.0, 1.0);
        let want = single_rank_reference(nd, nm, nt, &col, &m, false);
        for grid in [
            ProcessGrid::new(1, 1),
            ProcessGrid::new(1, 4),
            ProcessGrid::new(2, 2),
            ProcessGrid::new(4, 3),
            ProcessGrid::new(2, 5), // non-dividing column count
        ] {
            let dist = DistributedFftMatvec::from_global(
                nd,
                nm,
                nt,
                &col,
                grid,
                PrecisionConfig::all_double(),
            )
            .unwrap();
            let got = dist.apply_forward(&m).unwrap();
            let err = rel_l2_error(&got, &want);
            assert!(err < 1e-12, "grid {}x{}: err {err}", grid.rows, grid.cols);
        }
    }

    #[test]
    fn distributed_adjoint_matches_single_rank() {
        let (nd, nm, nt) = (4usize, 10usize, 5usize);
        let col = global_col(nd, nm, nt, 3);
        let mut rng = SplitMix64::new(4);
        let mut d = vec![0.0; nd * nt];
        rng.fill_uniform(&mut d, -1.0, 1.0);
        let want = single_rank_reference(nd, nm, nt, &col, &d, true);
        for grid in [ProcessGrid::new(1, 5), ProcessGrid::new(2, 2), ProcessGrid::new(4, 2)] {
            let dist = DistributedFftMatvec::from_global(
                nd,
                nm,
                nt,
                &col,
                grid,
                PrecisionConfig::all_double(),
            )
            .unwrap();
            let got = dist.apply_adjoint(&d).unwrap();
            let err = rel_l2_error(&got, &want);
            assert!(err < 1e-12, "grid {}x{}: err {err}", grid.rows, grid.cols);
        }
    }

    #[test]
    fn single_precision_reduction_adds_error() {
        // dssdd vs dssds: lowering the reduction precision must increase
        // the error on a multi-column grid (the Figure-4 tradeoff).
        let (nd, nm, nt) = (2usize, 16usize, 8usize);
        let col = global_col(nd, nm, nt, 5);
        let mut rng = SplitMix64::new(6);
        let mut m = vec![0.0; nm * nt];
        rng.fill_uniform_stuffed(&mut m, -1.0, 1.0);
        let baseline = single_rank_reference(nd, nm, nt, &col, &m, false);
        let grid = ProcessGrid::new(1, 8);
        let mut dist =
            DistributedFftMatvec::from_global(nd, nm, nt, &col, grid, "dssdd".parse().unwrap())
                .unwrap();
        let err_dd = rel_l2_error(&dist.apply_forward(&m).unwrap(), &baseline);
        dist.set_config("dssds".parse().unwrap());
        let err_ds = rel_l2_error(&dist.apply_forward(&m).unwrap(), &baseline);
        assert!(err_ds > err_dd, "single reduction should cost accuracy: {err_ds} vs {err_dd}");
        assert!(err_ds < 1e-4);
    }

    #[test]
    fn simulate_includes_comm_only_for_multirank() {
        let (nd, nm, nt) = (4usize, 8usize, 4usize);
        let col = global_col(nd, nm, nt, 7);
        let net = NetworkModel::frontier();
        let dev = DeviceSpec::mi250x_gcd();
        let single = DistributedFftMatvec::from_global(
            nd,
            nm,
            nt,
            &col,
            ProcessGrid::single(),
            PrecisionConfig::all_double(),
        )
        .unwrap();
        assert_eq!(single.simulate(&dev, &net, false).get(Phase::Comm), 0.0);
        let multi = DistributedFftMatvec::from_global(
            nd,
            nm,
            nt,
            &col,
            ProcessGrid::new(2, 4),
            PrecisionConfig::all_double(),
        )
        .unwrap();
        assert!(multi.simulate(&dev, &net, false).get(Phase::Comm) > 0.0);
    }

    #[test]
    fn ranks_share_one_cached_fft_plan() {
        // Every simulated rank runs the same transform length 2·N_t; the
        // plan cache must hand all of them the same plan object instead of
        // rebuilding twiddle tables per rank (the seed behaviour).
        let (nd, nm, nt) = (4usize, 8usize, 6usize);
        let col = global_col(nd, nm, nt, 9);
        let dist = DistributedFftMatvec::from_global(
            nd,
            nm,
            nt,
            &col,
            ProcessGrid::new(2, 4),
            PrecisionConfig::all_double(),
        )
        .unwrap();
        let first = dist.ranks[0].fft64_plan_handle();
        for rank in &dist.ranks[1..] {
            assert!(std::sync::Arc::ptr_eq(&first, &rank.fft64_plan_handle()));
        }
    }

    #[test]
    fn grid_validation_is_typed() {
        let (nd, nm, nt) = (2usize, 4usize, 3usize);
        let col = global_col(nd, nm, nt, 8);
        assert_eq!(
            DistributedFftMatvec::from_global(
                nd,
                nm,
                nt,
                &col,
                ProcessGrid::new(3, 1),
                PrecisionConfig::all_double()
            )
            .unwrap_err(),
            ConfigError::GridOversubscribed { axis: "rows", ranks: 3, extent: 2 }
        );
        assert_eq!(
            DistributedFftMatvec::from_global(
                nd,
                nm,
                nt,
                &col,
                ProcessGrid::new(1, 5),
                PrecisionConfig::all_double()
            )
            .unwrap_err(),
            ConfigError::GridOversubscribed { axis: "cols", ranks: 5, extent: 4 }
        );
        assert_eq!(
            DistributedFftMatvec::from_global(
                nd,
                nm,
                nt,
                &col[1..],
                ProcessGrid::single(),
                PrecisionConfig::all_double()
            )
            .unwrap_err(),
            ConfigError::ColumnLength { expected: 24, got: 23 }
        );
    }

    #[test]
    fn apply_length_errors_are_typed() {
        let (nd, nm, nt) = (2usize, 4usize, 3usize);
        let col = global_col(nd, nm, nt, 10);
        let dist = DistributedFftMatvec::from_global(
            nd,
            nm,
            nt,
            &col,
            ProcessGrid::new(2, 2),
            PrecisionConfig::all_double(),
        )
        .unwrap();
        assert_eq!(dist.shape(), OpShape::new(6, 12));
        assert!(matches!(dist.apply_forward(&[0.0; 5]), Err(OpError::InputLength { .. })));
        let mut out = [0.0; 4];
        assert!(matches!(
            dist.apply_adjoint_into(&[0.0; 6], &mut out),
            Err(OpError::OutputLength { .. })
        ));
    }
}
