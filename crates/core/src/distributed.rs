//! The distributed FFTMatvec over a 2-D process grid.
//!
//! Grid rows partition the sensors, columns partition the parameters
//! (Section 2.4): rank `(r, c)` owns the local operator block with
//! `n_d = ⌈N_d/p_r⌉` sensors and `n_m = ⌈N_m/p_c⌉` parameters. Per-rank
//! arithmetic is real (each simulated rank runs the full mixed-precision
//! pipeline on its slice); the inter-rank collectives move real data in
//! the configured precision via `fftmatvec-comm`, and wall time is modeled
//! as `max(rank compute) + comm model`.
//!
//! F matvec: the input is column-partitioned, so with `p_r = 1` phase 1
//! needs no communication; with `p_r > 1` each column allgathers its
//! slice. Phase 5 tree-reduces partial outputs across each grid row. The
//! F* matvec mirrors this (broadcast across rows, reduce down columns).

#[cfg(feature = "parallel")]
use rayon::prelude::*;

use fftmatvec_comm::collectives::tree_reduce_sum;
use fftmatvec_comm::{NetworkModel, ProcessGrid};
use fftmatvec_gpu::{DeviceSpec, Phase, PhaseTimes};
use fftmatvec_numeric::Precision;

use crate::operator::BlockToeplitzOperator;
use crate::pipeline::FftMatvec;
use crate::precision::{MatvecPhase, PrecisionConfig};
use crate::timing::{simulate_phases, MatvecDims};

/// FFTMatvec partitioned over a process grid, all ranks in-process.
pub struct DistributedFftMatvec {
    grid: ProcessGrid,
    nd: usize,
    nm: usize,
    nt: usize,
    /// Per-rank pipelines, indexed by grid rank (column-major).
    ranks: Vec<FftMatvec>,
}

impl DistributedFftMatvec {
    /// Partition a global operator (given by its first block column, in
    /// the same `[t][i][k]` layout as
    /// [`BlockToeplitzOperator::from_first_block_column`]) over `grid`.
    pub fn from_global(
        nd: usize,
        nm: usize,
        nt: usize,
        col: &[f64],
        grid: ProcessGrid,
        cfg: PrecisionConfig,
    ) -> Result<Self, String> {
        if col.len() != nt * nd * nm {
            return Err(format!(
                "global first block column has {} entries, expected {}",
                col.len(),
                nt * nd * nm
            ));
        }
        if grid.rows > nd {
            return Err(format!("grid rows {} exceed sensor count {}", grid.rows, nd));
        }
        if grid.cols > nm {
            return Err(format!("grid cols {} exceed parameter count {}", grid.cols, nm));
        }
        let mut ranks = Vec::with_capacity(grid.size());
        for rank in 0..grid.size() {
            let (r, c) = grid.coords_of(rank);
            let ri = grid.sensor_range(nd, r);
            let ci = grid.param_range(nm, c);
            let (ndl, nml) = (ri.len(), ci.len());
            let mut local = vec![0.0; nt * ndl * nml];
            for t in 0..nt {
                for (ii, i) in ri.clone().enumerate() {
                    let src = &col[(t * nd + i) * nm + ci.start..(t * nd + i) * nm + ci.end];
                    local[(t * ndl + ii) * nml..(t * ndl + ii) * nml + nml].copy_from_slice(src);
                }
            }
            let op = BlockToeplitzOperator::from_first_block_column(ndl, nml, nt, &local)?;
            ranks.push(FftMatvec::new(op, cfg));
        }
        Ok(DistributedFftMatvec { grid, nd, nm, nt, ranks })
    }

    /// The process grid.
    pub fn grid(&self) -> ProcessGrid {
        self.grid
    }

    /// Global dimensions `(N_d, N_m, N_t)`.
    pub fn dims(&self) -> (usize, usize, usize) {
        (self.nd, self.nm, self.nt)
    }

    /// Change every rank's precision configuration.
    pub fn set_config(&mut self, cfg: PrecisionConfig) {
        for r in &mut self.ranks {
            r.set_config(cfg);
        }
    }

    /// Current configuration.
    pub fn config(&self) -> PrecisionConfig {
        self.ranks[0].config()
    }

    /// `d = F·m` with global TOSI vectors.
    pub fn apply_forward(&self, m: &[f64]) -> Vec<f64> {
        assert_eq!(m.len(), self.nm * self.nt, "distributed forward input length");
        // Scatter: column c's slice, replicated down its rows (the
        // phase-1 broadcast/allgather).
        let per_rank = |rank: usize| {
            let (_, c) = self.grid.coords_of(rank);
            let ci = self.grid.param_range(self.nm, c);
            let mut mc = vec![0.0; ci.len() * self.nt];
            for t in 0..self.nt {
                mc[t * ci.len()..(t + 1) * ci.len()]
                    .copy_from_slice(&m[t * self.nm + ci.start..t * self.nm + ci.end]);
            }
            self.ranks[rank].apply_forward(&mc)
        };
        #[cfg(feature = "parallel")]
        let partials: Vec<Vec<f64>> = (0..self.grid.size()).into_par_iter().map(per_rank).collect();
        #[cfg(not(feature = "parallel"))]
        let partials: Vec<Vec<f64>> = (0..self.grid.size()).map(per_rank).collect();

        // Phase 5: tree-reduce each grid row's partials across columns in
        // the phase-5 precision, then place into the global output.
        let p5 = self.config().phase(MatvecPhase::Unpad);
        let mut d = vec![0.0; self.nd * self.nt];
        for r in 0..self.grid.rows {
            let row_parts: Vec<&Vec<f64>> =
                self.grid.row_ranks(r).iter().map(|&rk| &partials[rk]).collect();
            let reduced = reduce_in_precision(&row_parts, p5);
            let ri = self.grid.sensor_range(self.nd, r);
            let ndl = ri.len();
            for t in 0..self.nt {
                for (ii, i) in ri.clone().enumerate() {
                    d[t * self.nd + i] = reduced[t * ndl + ii];
                }
            }
        }
        d
    }

    /// `m = F*·d` with global TOSI vectors.
    pub fn apply_adjoint(&self, d: &[f64]) -> Vec<f64> {
        assert_eq!(d.len(), self.nd * self.nt, "distributed adjoint input length");
        let per_rank = |rank: usize| {
            let (r, _) = self.grid.coords_of(rank);
            let ri = self.grid.sensor_range(self.nd, r);
            let mut dr = vec![0.0; ri.len() * self.nt];
            for t in 0..self.nt {
                dr[t * ri.len()..(t + 1) * ri.len()]
                    .copy_from_slice(&d[t * self.nd + ri.start..t * self.nd + ri.end]);
            }
            self.ranks[rank].apply_adjoint(&dr)
        };
        #[cfg(feature = "parallel")]
        let partials: Vec<Vec<f64>> = (0..self.grid.size()).into_par_iter().map(per_rank).collect();
        #[cfg(not(feature = "parallel"))]
        let partials: Vec<Vec<f64>> = (0..self.grid.size()).map(per_rank).collect();

        let p5 = self.config().phase(MatvecPhase::Unpad);
        let mut mv = vec![0.0; self.nm * self.nt];
        for c in 0..self.grid.cols {
            let col_parts: Vec<&Vec<f64>> =
                self.grid.col_ranks(c).iter().map(|&rk| &partials[rk]).collect();
            let reduced = reduce_in_precision(&col_parts, p5);
            let ci = self.grid.param_range(self.nm, c);
            let nml = ci.len();
            for t in 0..self.nt {
                for (kk, k) in ci.clone().enumerate() {
                    mv[t * self.nm + k] = reduced[t * nml + kk];
                }
            }
        }
        mv
    }

    /// Modeled matvec time on `dev` ranks under `net`: slowest rank's
    /// compute plus the grid's communication.
    pub fn simulate(&self, dev: &DeviceSpec, net: &NetworkModel, adjoint: bool) -> PhaseTimes {
        // Rank (0,0) owns the ⌈·⌉ chunk sizes — the slowest rank.
        let ndl = self.grid.sensor_range(self.nd, 0).len();
        let nml = self.grid.param_range(self.nm, 0).len();
        let cfg = self.config();
        let mut t = simulate_phases(MatvecDims::new(ndl, nml, self.nt), cfg, adjoint, dev);

        let p1 = cfg.phase(MatvecPhase::Pad);
        let p5 = cfg.phase(MatvecPhase::Unpad);
        let m_col_bytes = (nml * self.nt * p1.real_bytes()) as f64;
        let d_row_bytes = (ndl * self.nt * p5.real_bytes()) as f64;
        let comm = if adjoint {
            net.adjoint_matvec_comm(&self.grid, m_col_bytes, d_row_bytes)
        } else {
            net.forward_matvec_comm(&self.grid, m_col_bytes, d_row_bytes)
        };
        t.add(Phase::Comm, comm);
        t
    }
}

/// Tree-reduce partial vectors in the given precision, returning double.
/// Below double precision the inputs are rounded first (the cast fused
/// into the communication buffers), summed pairwise in the tier's storage
/// rounding, and widened back — exactly the arithmetic a
/// reduced-precision RCCL reduction performs. Works for all four lattice
/// tiers, including the software-emulated 16-bit formats.
fn reduce_in_precision(parts: &[&Vec<f64>], p: Precision) -> Vec<f64> {
    use fftmatvec_numeric::{with_real, Real};
    with_real!(p, T => {
        let owned: Vec<Vec<T>> =
            parts.iter().map(|v| v.iter().map(|&x| T::from_f64(x)).collect()).collect();
        tree_reduce_sum(&owned).into_iter().map(|x| x.to_f64()).collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fftmatvec_numeric::vecmath::rel_l2_error;
    use fftmatvec_numeric::SplitMix64;

    fn global_col(nd: usize, nm: usize, nt: usize, seed: u64) -> Vec<f64> {
        let mut rng = SplitMix64::new(seed);
        let mut col = vec![0.0; nt * nd * nm];
        rng.fill_uniform(&mut col, -1.0, 1.0);
        col
    }

    fn single_rank_reference(
        nd: usize,
        nm: usize,
        nt: usize,
        col: &[f64],
        m: &[f64],
        adjoint: bool,
    ) -> Vec<f64> {
        let op = BlockToeplitzOperator::from_first_block_column(nd, nm, nt, col).unwrap();
        let mv = FftMatvec::new(op, PrecisionConfig::all_double());
        if adjoint {
            mv.apply_adjoint(m)
        } else {
            mv.apply_forward(m)
        }
    }

    #[test]
    fn distributed_forward_matches_single_rank() {
        let (nd, nm, nt) = (4usize, 12usize, 6usize);
        let col = global_col(nd, nm, nt, 1);
        let mut rng = SplitMix64::new(2);
        let mut m = vec![0.0; nm * nt];
        rng.fill_uniform(&mut m, -1.0, 1.0);
        let want = single_rank_reference(nd, nm, nt, &col, &m, false);
        for grid in [
            ProcessGrid::new(1, 1),
            ProcessGrid::new(1, 4),
            ProcessGrid::new(2, 2),
            ProcessGrid::new(4, 3),
            ProcessGrid::new(2, 5), // non-dividing column count
        ] {
            let dist = DistributedFftMatvec::from_global(
                nd,
                nm,
                nt,
                &col,
                grid,
                PrecisionConfig::all_double(),
            )
            .unwrap();
            let got = dist.apply_forward(&m);
            let err = rel_l2_error(&got, &want);
            assert!(err < 1e-12, "grid {}x{}: err {err}", grid.rows, grid.cols);
        }
    }

    #[test]
    fn distributed_adjoint_matches_single_rank() {
        let (nd, nm, nt) = (4usize, 10usize, 5usize);
        let col = global_col(nd, nm, nt, 3);
        let mut rng = SplitMix64::new(4);
        let mut d = vec![0.0; nd * nt];
        rng.fill_uniform(&mut d, -1.0, 1.0);
        let want = single_rank_reference(nd, nm, nt, &col, &d, true);
        for grid in [ProcessGrid::new(1, 5), ProcessGrid::new(2, 2), ProcessGrid::new(4, 2)] {
            let dist = DistributedFftMatvec::from_global(
                nd,
                nm,
                nt,
                &col,
                grid,
                PrecisionConfig::all_double(),
            )
            .unwrap();
            let got = dist.apply_adjoint(&d);
            let err = rel_l2_error(&got, &want);
            assert!(err < 1e-12, "grid {}x{}: err {err}", grid.rows, grid.cols);
        }
    }

    #[test]
    fn single_precision_reduction_adds_error() {
        // dssdd vs dssds: lowering the reduction precision must increase
        // the error on a multi-column grid (the Figure-4 tradeoff).
        let (nd, nm, nt) = (2usize, 16usize, 8usize);
        let col = global_col(nd, nm, nt, 5);
        let mut rng = SplitMix64::new(6);
        let mut m = vec![0.0; nm * nt];
        rng.fill_uniform_stuffed(&mut m, -1.0, 1.0);
        let baseline = single_rank_reference(nd, nm, nt, &col, &m, false);
        let grid = ProcessGrid::new(1, 8);
        let mut dist =
            DistributedFftMatvec::from_global(nd, nm, nt, &col, grid, "dssdd".parse().unwrap())
                .unwrap();
        let err_dd = rel_l2_error(&dist.apply_forward(&m), &baseline);
        dist.set_config("dssds".parse().unwrap());
        let err_ds = rel_l2_error(&dist.apply_forward(&m), &baseline);
        assert!(err_ds > err_dd, "single reduction should cost accuracy: {err_ds} vs {err_dd}");
        assert!(err_ds < 1e-4);
    }

    #[test]
    fn simulate_includes_comm_only_for_multirank() {
        let (nd, nm, nt) = (4usize, 8usize, 4usize);
        let col = global_col(nd, nm, nt, 7);
        let net = NetworkModel::frontier();
        let dev = DeviceSpec::mi250x_gcd();
        let single = DistributedFftMatvec::from_global(
            nd,
            nm,
            nt,
            &col,
            ProcessGrid::single(),
            PrecisionConfig::all_double(),
        )
        .unwrap();
        assert_eq!(single.simulate(&dev, &net, false).get(Phase::Comm), 0.0);
        let multi = DistributedFftMatvec::from_global(
            nd,
            nm,
            nt,
            &col,
            ProcessGrid::new(2, 4),
            PrecisionConfig::all_double(),
        )
        .unwrap();
        assert!(multi.simulate(&dev, &net, false).get(Phase::Comm) > 0.0);
    }

    #[test]
    fn ranks_share_one_cached_fft_plan() {
        // Every simulated rank runs the same transform length 2·N_t; the
        // plan cache must hand all of them the same plan object instead of
        // rebuilding twiddle tables per rank (the seed behaviour).
        let (nd, nm, nt) = (4usize, 8usize, 6usize);
        let col = global_col(nd, nm, nt, 9);
        let dist = DistributedFftMatvec::from_global(
            nd,
            nm,
            nt,
            &col,
            ProcessGrid::new(2, 4),
            PrecisionConfig::all_double(),
        )
        .unwrap();
        let first = dist.ranks[0].fft64_plan_handle();
        for rank in &dist.ranks[1..] {
            assert!(std::sync::Arc::ptr_eq(first, rank.fft64_plan_handle()));
        }
    }

    #[test]
    fn grid_validation() {
        let (nd, nm, nt) = (2usize, 4usize, 3usize);
        let col = global_col(nd, nm, nt, 8);
        assert!(DistributedFftMatvec::from_global(
            nd,
            nm,
            nt,
            &col,
            ProcessGrid::new(3, 1),
            PrecisionConfig::all_double()
        )
        .is_err());
        assert!(DistributedFftMatvec::from_global(
            nd,
            nm,
            nt,
            &col,
            ProcessGrid::new(1, 5),
            PrecisionConfig::all_double()
        )
        .is_err());
        assert!(DistributedFftMatvec::from_global(
            nd,
            nm,
            nt,
            &col[1..],
            ProcessGrid::single(),
            PrecisionConfig::all_double()
        )
        .is_err());
    }
}
