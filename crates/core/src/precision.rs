//! Five-phase precision configurations (Section 3.2).
//!
//! The artifact sets these with `-prec xxxxx` where each `x` is `d` or `s`,
//! ordered by phase: pad, FFT, SBGEMV, IFFT, unpad. `dssdd` — the measured
//! optimum for the F matvec at tolerance 1e-7 — computes the FFT of the
//! parameter vector and the SBGEMV in single precision and everything else
//! in double.

use core::fmt;
use core::str::FromStr;

use fftmatvec_numeric::Precision;

/// The five configurable phases, in pipeline order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MatvecPhase {
    Pad = 0,
    Fft = 1,
    Sbgemv = 2,
    Ifft = 3,
    Unpad = 4,
}

impl MatvecPhase {
    /// All five phases in order.
    pub const ALL: [MatvecPhase; 5] = [
        MatvecPhase::Pad,
        MatvecPhase::Fft,
        MatvecPhase::Sbgemv,
        MatvecPhase::Ifft,
        MatvecPhase::Unpad,
    ];
}

/// A full five-phase precision assignment.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PrecisionConfig {
    phases: [Precision; 5],
}

impl PrecisionConfig {
    /// All phases double — the baseline configuration.
    pub fn all_double() -> Self {
        PrecisionConfig { phases: [Precision::Double; 5] }
    }

    /// All phases single — the fastest (and least accurate) configuration.
    pub fn all_single() -> Self {
        PrecisionConfig { phases: [Precision::Single; 5] }
    }

    /// `dssdd` — the paper's measured-optimal F-matvec configuration for a
    /// 1e-7 relative error tolerance (Section 4.2.1).
    pub fn optimal_forward() -> Self {
        "dssdd".parse().expect("static config string")
    }

    /// `ddssd` — the corresponding F*-matvec optimum: SBGEMV and the IFFT
    /// of the output vector `m` in single precision.
    pub fn optimal_adjoint() -> Self {
        "ddssd".parse().expect("static config string")
    }

    /// `dssds` — the ≥512-GPU optimum from Figure 4 (the phase-5
    /// reduction also dropped to single once communication dominates).
    pub fn optimal_forward_at_scale() -> Self {
        "dssds".parse().expect("static config string")
    }

    /// Build from explicit phase precisions.
    pub fn from_phases(phases: [Precision; 5]) -> Self {
        PrecisionConfig { phases }
    }

    /// Precision of one phase.
    #[inline]
    pub fn phase(&self, p: MatvecPhase) -> Precision {
        self.phases[p as usize]
    }

    /// Replace one phase's precision.
    pub fn with_phase(mut self, p: MatvecPhase, prec: Precision) -> Self {
        self.phases[p as usize] = prec;
        self
    }

    /// All 32 configurations, in lexicographic `ddddd`→`sssss` order of
    /// the config string with `d < s`.
    pub fn all_configs() -> Vec<PrecisionConfig> {
        (0..32u32)
            .map(|bits| {
                let mut phases = [Precision::Double; 5];
                for (i, ph) in phases.iter_mut().enumerate() {
                    if bits & (1 << (4 - i)) != 0 {
                        *ph = Precision::Single;
                    }
                }
                PrecisionConfig { phases }
            })
            .collect()
    }

    /// Number of phases computed in single precision.
    pub fn single_count(&self) -> usize {
        self.phases.iter().filter(|&&p| p == Precision::Single).count()
    }

    /// True if every phase is double (the error-free baseline).
    pub fn is_all_double(&self) -> bool {
        self.single_count() == 0
    }

    /// The precision a *memory operation between* two phases runs in: the
    /// lowest among the adjacent compute precisions (Section 3.2).
    pub fn boundary(&self, a: MatvecPhase, b: MatvecPhase) -> Precision {
        self.phase(a).min(self.phase(b))
    }
}

impl FromStr for PrecisionConfig {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let chars: Vec<char> = s.chars().collect();
        if chars.len() != 5 {
            return Err(format!("precision config must have 5 characters, got {:?}", s));
        }
        let mut phases = [Precision::Double; 5];
        for (i, &c) in chars.iter().enumerate() {
            phases[i] = Precision::from_code(c)
                .ok_or_else(|| format!("invalid precision code {c:?} in {s:?}"))?;
        }
        Ok(PrecisionConfig { phases })
    }
}

impl fmt::Display for PrecisionConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for p in &self.phases {
            write!(f, "{}", p.code())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_format_roundtrip() {
        for s in ["ddddd", "sssss", "dssdd", "dssds", "ddssd"] {
            let cfg: PrecisionConfig = s.parse().unwrap();
            assert_eq!(cfg.to_string(), s);
        }
    }

    #[test]
    fn parse_rejects_bad_strings() {
        assert!("dsd".parse::<PrecisionConfig>().is_err());
        assert!("dddddd".parse::<PrecisionConfig>().is_err());
        assert!("dxddd".parse::<PrecisionConfig>().is_err());
    }

    #[test]
    fn optimal_config_phases() {
        let cfg = PrecisionConfig::optimal_forward();
        assert_eq!(cfg.phase(MatvecPhase::Pad), Precision::Double);
        assert_eq!(cfg.phase(MatvecPhase::Fft), Precision::Single);
        assert_eq!(cfg.phase(MatvecPhase::Sbgemv), Precision::Single);
        assert_eq!(cfg.phase(MatvecPhase::Ifft), Precision::Double);
        assert_eq!(cfg.phase(MatvecPhase::Unpad), Precision::Double);
        assert_eq!(cfg.single_count(), 2);
    }

    #[test]
    fn thirty_two_distinct_configs() {
        let all = PrecisionConfig::all_configs();
        assert_eq!(all.len(), 32);
        let strings: std::collections::HashSet<String> =
            all.iter().map(|c| c.to_string()).collect();
        assert_eq!(strings.len(), 32);
        assert!(strings.contains("ddddd"));
        assert!(strings.contains("sssss"));
        assert!(all[0].is_all_double());
    }

    #[test]
    fn boundary_precision_is_the_min() {
        let cfg: PrecisionConfig = "dsdsd".parse().unwrap();
        assert_eq!(cfg.boundary(MatvecPhase::Pad, MatvecPhase::Fft), Precision::Single);
        assert_eq!(cfg.boundary(MatvecPhase::Sbgemv, MatvecPhase::Ifft), Precision::Single);
        let dd: PrecisionConfig = "ddddd".parse().unwrap();
        assert_eq!(dd.boundary(MatvecPhase::Fft, MatvecPhase::Sbgemv), Precision::Double);
    }

    #[test]
    fn with_phase_replaces_single_slot() {
        let cfg = PrecisionConfig::all_double().with_phase(MatvecPhase::Sbgemv, Precision::Single);
        assert_eq!(cfg.to_string(), "ddsdd");
    }
}
