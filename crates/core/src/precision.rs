//! Five-phase precision configurations (Section 3.2).
//!
//! The artifact sets these with `-prec xxxxx` where each `x` is one of
//! `h`/`b`/`s`/`d` (half, bfloat16, single, double — the 16-bit codes are
//! this workspace's extension over the paper's `{s, d}`), ordered by
//! phase: pad, FFT, SBGEMV, IFFT, unpad. `dssdd` — the measured optimum
//! for the F matvec at tolerance 1e-7 — computes the FFT of the parameter
//! vector and the SBGEMV in single precision and everything else in
//! double. Opening the lattice to four tiers grows the configuration
//! space from 2⁵ = 32 ([`PrecisionConfig::all_configs`]) to 4⁵ = 1024
//! ([`PrecisionConfig::all_configs_full`]) per matvec.

use core::fmt;
use core::str::FromStr;

use fftmatvec_numeric::Precision;

/// The five configurable phases, in pipeline order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MatvecPhase {
    Pad = 0,
    Fft = 1,
    Sbgemv = 2,
    Ifft = 3,
    Unpad = 4,
}

impl MatvecPhase {
    /// All five phases in order.
    pub const ALL: [MatvecPhase; 5] = [
        MatvecPhase::Pad,
        MatvecPhase::Fft,
        MatvecPhase::Sbgemv,
        MatvecPhase::Ifft,
        MatvecPhase::Unpad,
    ];
}

/// A full five-phase precision assignment.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PrecisionConfig {
    phases: [Precision; 5],
}

impl PrecisionConfig {
    /// All phases double — the baseline configuration.
    pub fn all_double() -> Self {
        PrecisionConfig { phases: [Precision::Double; 5] }
    }

    /// All phases single — the fastest (and least accurate) configuration.
    pub fn all_single() -> Self {
        PrecisionConfig { phases: [Precision::Single; 5] }
    }

    /// `dssdd` — the paper's measured-optimal F-matvec configuration for a
    /// 1e-7 relative error tolerance (Section 4.2.1).
    pub fn optimal_forward() -> Self {
        "dssdd".parse().expect("static config string")
    }

    /// `ddssd` — the corresponding F*-matvec optimum: SBGEMV and the IFFT
    /// of the output vector `m` in single precision.
    pub fn optimal_adjoint() -> Self {
        "ddssd".parse().expect("static config string")
    }

    /// `dssds` — the ≥512-GPU optimum from Figure 4 (the phase-5
    /// reduction also dropped to single once communication dominates).
    pub fn optimal_forward_at_scale() -> Self {
        "dssds".parse().expect("static config string")
    }

    /// Build from explicit phase precisions.
    pub fn from_phases(phases: [Precision; 5]) -> Self {
        PrecisionConfig { phases }
    }

    /// Precision of one phase.
    #[inline]
    pub fn phase(&self, p: MatvecPhase) -> Precision {
        self.phases[p as usize]
    }

    /// Replace one phase's precision.
    pub fn with_phase(mut self, p: MatvecPhase, prec: Precision) -> Self {
        self.phases[p as usize] = prec;
        self
    }

    /// All phases half — the cheapest tier of the extended lattice
    /// (software-emulated; see `fftmatvec_numeric::half`).
    pub fn all_half() -> Self {
        PrecisionConfig { phases: [Precision::Half; 5] }
    }

    /// All phases bfloat16 — the least accurate tier (ε = 2⁻⁷).
    pub fn all_bf16() -> Self {
        PrecisionConfig { phases: [Precision::BFloat16; 5] }
    }

    /// The paper's 32 two-tier configurations, in lexicographic
    /// `ddddd`→`sssss` order of the config string with `d < s`.
    pub fn all_configs() -> Vec<PrecisionConfig> {
        (0..32u32)
            .map(|bits| {
                let mut phases = [Precision::Double; 5];
                for (i, ph) in phases.iter_mut().enumerate() {
                    if bits & (1 << (4 - i)) != 0 {
                        *ph = Precision::Single;
                    }
                }
                PrecisionConfig { phases }
            })
            .collect()
    }

    /// All 4⁵ = 1024 configurations of the extended four-tier lattice,
    /// enumerated base-4 with the leftmost phase most significant and
    /// digits in lattice order (`h < b < s < d`), starting from `hhhhh`.
    pub fn all_configs_full() -> Vec<PrecisionConfig> {
        (0..1024u32)
            .map(|mut code| {
                let mut phases = [Precision::Half; 5];
                for ph in phases.iter_mut().rev() {
                    *ph = Precision::ALL[(code % 4) as usize];
                    code /= 4;
                }
                PrecisionConfig { phases }
            })
            .collect()
    }

    /// Number of phases computed in single precision (FP32).
    pub fn single_count(&self) -> usize {
        self.phases.iter().filter(|&&p| p == Precision::Single).count()
    }

    /// Number of phases computed below double precision — the tie-break
    /// statistic the Pareto selection uses to prefer the most
    /// conservative configuration at equal speed.
    pub fn narrow_count(&self) -> usize {
        self.phases.iter().filter(|&&p| p != Precision::Double).count()
    }

    /// True if every phase is double (the error-free baseline).
    pub fn is_all_double(&self) -> bool {
        self.narrow_count() == 0
    }

    /// The precision a *memory operation between* two phases runs in: the
    /// lowest among the adjacent compute precisions (Section 3.2).
    pub fn boundary(&self, a: MatvecPhase, b: MatvecPhase) -> Precision {
        self.phase(a).min(self.phase(b))
    }
}

impl FromStr for PrecisionConfig {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let chars: Vec<char> = s.chars().collect();
        if chars.len() != 5 {
            return Err(format!("precision config must have 5 characters, got {:?}", s));
        }
        let mut phases = [Precision::Double; 5];
        for (i, &c) in chars.iter().enumerate() {
            phases[i] = Precision::from_code(c)
                .ok_or_else(|| format!("invalid precision code {c:?} in {s:?}"))?;
        }
        Ok(PrecisionConfig { phases })
    }
}

impl fmt::Display for PrecisionConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for p in &self.phases {
            write!(f, "{}", p.code())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_format_roundtrip() {
        for s in ["ddddd", "sssss", "dssdd", "dssds", "ddssd", "hhhhh", "bbbbb", "hbsdd", "dhbsd"] {
            let cfg: PrecisionConfig = s.parse().unwrap();
            assert_eq!(cfg.to_string(), s);
        }
    }

    #[test]
    fn hbsdd_roundtrips_with_expected_phases() {
        // The acceptance-criteria example: a config mixing all four tiers.
        let cfg: PrecisionConfig = "hbsdd".parse().unwrap();
        assert_eq!(cfg.phase(MatvecPhase::Pad), Precision::Half);
        assert_eq!(cfg.phase(MatvecPhase::Fft), Precision::BFloat16);
        assert_eq!(cfg.phase(MatvecPhase::Sbgemv), Precision::Single);
        assert_eq!(cfg.phase(MatvecPhase::Ifft), Precision::Double);
        assert_eq!(cfg.phase(MatvecPhase::Unpad), Precision::Double);
        assert_eq!(cfg.to_string(), "hbsdd");
        assert_eq!(cfg.narrow_count(), 3);
        assert_eq!(cfg.single_count(), 1);
    }

    #[test]
    fn parse_rejects_bad_strings() {
        assert!("dsd".parse::<PrecisionConfig>().is_err());
        assert!("dddddd".parse::<PrecisionConfig>().is_err());
        assert!("dxddd".parse::<PrecisionConfig>().is_err());
        assert!("hhhqh".parse::<PrecisionConfig>().is_err());
    }

    #[test]
    fn optimal_config_phases() {
        let cfg = PrecisionConfig::optimal_forward();
        assert_eq!(cfg.phase(MatvecPhase::Pad), Precision::Double);
        assert_eq!(cfg.phase(MatvecPhase::Fft), Precision::Single);
        assert_eq!(cfg.phase(MatvecPhase::Sbgemv), Precision::Single);
        assert_eq!(cfg.phase(MatvecPhase::Ifft), Precision::Double);
        assert_eq!(cfg.phase(MatvecPhase::Unpad), Precision::Double);
        assert_eq!(cfg.single_count(), 2);
    }

    #[test]
    fn thirty_two_distinct_configs() {
        let all = PrecisionConfig::all_configs();
        assert_eq!(all.len(), 32);
        let strings: std::collections::HashSet<String> =
            all.iter().map(|c| c.to_string()).collect();
        assert_eq!(strings.len(), 32);
        assert!(strings.contains("ddddd"));
        assert!(strings.contains("sssss"));
        assert!(all[0].is_all_double());
    }

    #[test]
    fn full_lattice_has_1024_distinct_configs() {
        let all = PrecisionConfig::all_configs_full();
        assert_eq!(all.len(), 1024);
        let strings: std::collections::HashSet<String> =
            all.iter().map(|c| c.to_string()).collect();
        assert_eq!(strings.len(), 1024);
        // Exhaustive parse/format roundtrip over the whole lattice.
        for cfg in &all {
            assert_eq!(cfg.to_string().parse::<PrecisionConfig>().unwrap(), *cfg);
        }
        assert_eq!(all[0].to_string(), "hhhhh");
        assert_eq!(all[1023].to_string(), "ddddd");
        assert!(strings.contains("hbsdd"));
        // The two-tier set is a subset of the full lattice.
        for cfg in PrecisionConfig::all_configs() {
            assert!(strings.contains(&cfg.to_string()));
        }
    }

    #[test]
    fn boundary_precision_is_the_min() {
        let cfg: PrecisionConfig = "dsdsd".parse().unwrap();
        assert_eq!(cfg.boundary(MatvecPhase::Pad, MatvecPhase::Fft), Precision::Single);
        assert_eq!(cfg.boundary(MatvecPhase::Sbgemv, MatvecPhase::Ifft), Precision::Single);
        let dd: PrecisionConfig = "ddddd".parse().unwrap();
        assert_eq!(dd.boundary(MatvecPhase::Fft, MatvecPhase::Sbgemv), Precision::Double);
    }

    #[test]
    fn with_phase_replaces_single_slot() {
        let cfg = PrecisionConfig::all_double().with_phase(MatvecPhase::Sbgemv, Precision::Single);
        assert_eq!(cfg.to_string(), "ddsdd");
    }
}
