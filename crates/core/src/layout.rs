//! Fused memory-operation kernels: pad, unpad, and the TOSI↔SOTI
//! reorderings, each with precision casts folded in.
//!
//! FFTMatvec's vectors live in two layouts: *time-outer/space-inner*
//! (TOSI — the block convention `[t][series]` of the math) and
//! *space-outer/time-inner* (SOTI — `[series][t]`, what the batched FFT
//! wants). The paper treats these reorderings as pure memory operations,
//! fuses any precision casts into them, and runs them in the lowest
//! precision of the adjacent compute phases (Section 3.2). Each function
//! here is one such fused kernel, dispatched over all four tiers of the
//! extended precision lattice (`h`/`b`/`s`/`d`) via
//! [`fftmatvec_numeric::with_real`].

use fftmatvec_numeric::{Complex, ComplexBuffer, Precision, Real, RealBuffer};

/// Phase 1: TOSI input → SOTI zero-padded, cast to `p`.
///
/// `m[t·n_series + s]` for `t < nt` → `out[s·2nt + t]`; entries
/// `t ∈ [nt, 2nt)` are the circulant-embedding zeros.
///
/// Lengths are pipeline invariants, validated at the `LinearOperator`
/// boundary before any kernel runs; a mismatch here is a caller bug in
/// direct kernel use and asserts.
pub fn pad_input(m: &[f64], n_series: usize, nt: usize, p: Precision) -> RealBuffer {
    let mut out = RealBuffer::F64(Vec::new());
    pad_input_into(m, n_series, nt, p, &mut out);
    out
}

/// [`pad_input`] writing into a reusable buffer: `out` is
/// [`RealBuffer::reset`] to precision `p` (reusing its allocation when the
/// tier matches) and filled — the zero-allocation phase-1 kernel.
pub fn pad_input_into(m: &[f64], n_series: usize, nt: usize, p: Precision, out: &mut RealBuffer) {
    assert_eq!(m.len(), n_series * nt, "pad_input length mismatch");
    let n2 = 2 * nt;
    out.reset(p, n_series * n2);
    fn inner<T: Real>(m: &[f64], n_series: usize, nt: usize, out: &mut [T]) {
        let n2 = 2 * nt;
        for t in 0..nt {
            let row = &m[t * n_series..(t + 1) * n_series];
            for (s, &v) in row.iter().enumerate() {
                out[s * n2 + t] = T::from_f64(v);
            }
        }
    }
    match out {
        RealBuffer::F16(v) => inner(m, n_series, nt, v),
        RealBuffer::BF16(v) => inner(m, n_series, nt, v),
        RealBuffer::F32(v) => inner(m, n_series, nt, v),
        RealBuffer::F64(v) => inner(m, n_series, nt, v),
    }
}

/// Transposing cast kernel shared by both reorder directions: every
/// element moves `src[outer][inner] → out[inner][outer]` while rounding
/// into the target tier (casts route through `f64`, then RTNE into the
/// storage format — exact whenever the target is at least as wide).
fn transpose_cast<Tin: Real, Tout: Real>(
    src: &[Complex<Tin>],
    outer: usize,
    inner: usize,
    out: &mut [Complex<Tout>],
) {
    for o in 0..outer {
        let row = &src[o * inner..(o + 1) * inner];
        for (i, &v) in row.iter().enumerate() {
            out[i * outer + o] = v.cast();
        }
    }
}

/// Dispatch a source/destination `ComplexBuffer` pair to the generic
/// transpose-cast kernel — all 4×4 tier combinations, resolved once.
fn transpose_cast_dispatch(
    src: &ComplexBuffer,
    outer: usize,
    inner: usize,
    out: &mut ComplexBuffer,
) {
    macro_rules! arms {
        ($s:expr, $($var:ident),+) => {
            match out {
                $(ComplexBuffer::$var(o) => transpose_cast($s, outer, inner, o),)+
            }
        };
    }
    match src {
        ComplexBuffer::C16(s) => arms!(s, C16, CB16, C32, C64),
        ComplexBuffer::CB16(s) => arms!(s, C16, CB16, C32, C64),
        ComplexBuffer::C32(s) => arms!(s, C16, CB16, C32, C64),
        ComplexBuffer::C64(s) => arms!(s, C16, CB16, C32, C64),
    }
}

/// Phase 2→3 reorder: per-series spectra `[series][freq]` → per-frequency
/// batch vectors `[freq][series]`, cast to `p`.
pub fn spectrum_to_batch(
    spec: &ComplexBuffer,
    n_series: usize,
    nfreq: usize,
    p: Precision,
) -> ComplexBuffer {
    let mut out = ComplexBuffer::C64(Vec::new());
    spectrum_to_batch_into(spec, n_series, nfreq, p, &mut out);
    out
}

/// [`spectrum_to_batch`] writing into a reusable buffer (see
/// [`pad_input_into`]).
pub fn spectrum_to_batch_into(
    spec: &ComplexBuffer,
    n_series: usize,
    nfreq: usize,
    p: Precision,
    out: &mut ComplexBuffer,
) {
    assert_eq!(spec.len(), n_series * nfreq, "spectrum_to_batch length mismatch");
    out.reset_for_overwrite(p, n_series * nfreq);
    transpose_cast_dispatch(spec, n_series, nfreq, out);
}

/// Phase 3→4 reorder: per-frequency batch `[freq][series]` → per-series
/// spectra `[series][freq]`, cast to `p`.
pub fn batch_to_spectrum(
    batch: &ComplexBuffer,
    n_series: usize,
    nfreq: usize,
    p: Precision,
) -> ComplexBuffer {
    let mut out = ComplexBuffer::C64(Vec::new());
    batch_to_spectrum_into(batch, n_series, nfreq, p, &mut out);
    out
}

/// [`batch_to_spectrum`] writing into a reusable buffer (see
/// [`pad_input_into`]).
pub fn batch_to_spectrum_into(
    batch: &ComplexBuffer,
    n_series: usize,
    nfreq: usize,
    p: Precision,
    out: &mut ComplexBuffer,
) {
    assert_eq!(batch.len(), n_series * nfreq, "batch_to_spectrum length mismatch");
    out.reset_for_overwrite(p, n_series * nfreq);
    transpose_cast_dispatch(batch, nfreq, n_series, out);
}

/// Phase 5: SOTI padded time signals → TOSI unpadded output, routed
/// through precision `p` (the phase-5 memory-op precision) before the
/// final double-precision output — this round-trip is exactly where a
/// narrow phase 5 loses bits. When the storage tier widens exactly into
/// `p` (see [`Precision::widens_exactly_to`]) the route is the identity
/// and is skipped; otherwise every element is rounded through `p`. Note
/// the two 16-bit tiers do *not* widen into each other, so f16 data
/// routed through BFloat16 does round — the identity shortcut is the
/// representability relation, not the lattice meet.
pub fn unpad_output(time: &RealBuffer, n_series: usize, nt: usize, p: Precision) -> Vec<f64> {
    let mut out = vec![0.0f64; n_series * nt];
    unpad_output_into(time, n_series, nt, p, &mut out);
    out
}

/// [`unpad_output`] writing into a caller buffer of length
/// `n_series·nt` — the zero-allocation phase-5 kernel feeding the
/// `apply_into` output slice directly.
pub fn unpad_output_into(
    time: &RealBuffer,
    n_series: usize,
    nt: usize,
    p: Precision,
    out: &mut [f64],
) {
    let n2 = 2 * nt;
    assert_eq!(time.len(), n_series * n2, "unpad_output length mismatch");
    assert_eq!(out.len(), n_series * nt, "unpad_output output length mismatch");
    fn inner<T: Real>(
        v: &[T],
        n_series: usize,
        nt: usize,
        route: Option<Precision>,
        out: &mut [f64],
    ) {
        let n2 = 2 * nt;
        for s in 0..n_series {
            for t in 0..nt {
                let x = v[s * n2 + t].to_f64();
                out[t * n_series + s] = match route {
                    None => x,
                    Some(p) => p.round_f64(x),
                };
            }
        }
    }
    let route = (!time.precision().widens_exactly_to(p)).then_some(p);
    match time {
        RealBuffer::F16(v) => inner(v, n_series, nt, route, out),
        RealBuffer::BF16(v) => inner(v, n_series, nt, route, out),
        RealBuffer::F32(v) => inner(v, n_series, nt, route, out),
        RealBuffer::F64(v) => inner(v, n_series, nt, route, out),
    }
}

/// Cast a real SOTI buffer to a target precision (the fused cast between
/// phases 1 and 2 when their precisions differ). No-op when equal.
pub fn cast_real(buf: RealBuffer, p: Precision) -> RealBuffer {
    buf.cast(p)
}

/// [`cast_real`] writing into a reusable destination buffer: `dst` is
/// reset to precision `p` and filled with `src` rounded through `p`.
/// Callers skip this kernel entirely when
/// `src.precision() == p` (the pipeline borrows `src` instead).
pub fn cast_real_into(src: &RealBuffer, p: Precision, dst: &mut RealBuffer) {
    dst.reset_for_overwrite(p, src.len());
    fn fill<Tin: Real, Tout: Real>(src: &[Tin], out: &mut [Tout]) {
        for (o, &x) in out.iter_mut().zip(src) {
            *o = Tout::from_f64(x.to_f64());
        }
    }
    // Resolve both variants once; the inner loop is a monomorphized
    // slice-to-slice cast (casts route through f64, RTNE into storage).
    macro_rules! arms {
        ($s:expr, $($var:ident),+) => {
            match dst {
                $(RealBuffer::$var(o) => fill($s, o),)+
            }
        };
    }
    match src {
        RealBuffer::F16(s) => arms!(s, F16, BF16, F32, F64),
        RealBuffer::BF16(s) => arms!(s, F16, BF16, F32, F64),
        RealBuffer::F32(s) => arms!(s, F16, BF16, F32, F64),
        RealBuffer::F64(s) => arms!(s, F16, BF16, F32, F64),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fftmatvec_numeric::rng::mantissa_stuff;
    use fftmatvec_numeric::SplitMix64;

    #[test]
    fn pad_layout_and_zeros() {
        // 2 series, 3 timesteps: m[t][s] = 10·t + s.
        let m: Vec<f64> = (0..6).map(|i| (i / 2 * 10 + i % 2) as f64).collect();
        let b = pad_input(&m, 2, 3, Precision::Double);
        let v = b.as_f64().unwrap();
        assert_eq!(v.len(), 12);
        // Series 0: [0,10,20,0,0,0]; series 1: [1,11,21,0,0,0].
        assert_eq!(&v[0..6], &[0.0, 10.0, 20.0, 0.0, 0.0, 0.0]);
        assert_eq!(&v[6..12], &[1.0, 11.0, 21.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn pad_in_single_rounds() {
        let x = mantissa_stuff(0.3);
        let b = pad_input(&[x], 1, 1, Precision::Single);
        assert_eq!(b.precision(), Precision::Single);
        assert_ne!(b.get(0), x, "single pad must round a stuffed double");
        let b = pad_input(&[x], 1, 1, Precision::Double);
        assert_eq!(b.get(0), x);
    }

    #[test]
    fn pad_in_half_tiers_rounds_harder() {
        let x = mantissa_stuff(0.3);
        for p in [Precision::Half, Precision::BFloat16] {
            let b = pad_input(&[x], 1, 1, p);
            assert_eq!(b.precision(), p);
            let err = (b.get(0) - x).abs() / x.abs();
            assert!(err > 0.0 && err <= p.epsilon(), "{p}: {err}");
            // The 16-bit pad loses strictly more than the single pad.
            let s_err = (pad_input(&[x], 1, 1, Precision::Single).get(0) - x).abs();
            assert!((b.get(0) - x).abs() > s_err);
        }
    }

    #[test]
    fn reorders_are_mutually_inverse() {
        let (ns, nf) = (5, 7);
        let mut rng = SplitMix64::new(1);
        let data: Vec<fftmatvec_numeric::C64> = (0..ns * nf)
            .map(|_| fftmatvec_numeric::C64::new(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)))
            .collect();
        let spec = ComplexBuffer::C64(data.clone());
        let batch = spectrum_to_batch(&spec, ns, nf, Precision::Double);
        let back = batch_to_spectrum(&batch, ns, nf, Precision::Double);
        assert_eq!(back.to_c64_vec(), data);
    }

    #[test]
    fn reorder_transposes_indices() {
        // spec[s][f] = s + 10f ⇒ batch[f][s] must equal the same value.
        let (ns, nf) = (3, 4);
        let data: Vec<fftmatvec_numeric::C64> = (0..ns)
            .flat_map(|s| {
                (0..nf).map(move |f| fftmatvec_numeric::C64::new((s + 10 * f) as f64, 0.0))
            })
            .collect();
        let batch = spectrum_to_batch(&ComplexBuffer::C64(data), ns, nf, Precision::Double);
        for f in 0..nf {
            for s in 0..ns {
                assert_eq!(batch.get(f * ns + s).re, (s + 10 * f) as f64);
            }
        }
    }

    #[test]
    fn reorder_casts() {
        let spec = ComplexBuffer::C64(vec![fftmatvec_numeric::C64::new(mantissa_stuff(1.0), 0.0)]);
        let single = spectrum_to_batch(&spec, 1, 1, Precision::Single);
        assert_eq!(single.precision(), Precision::Single);
        assert_ne!(single.get(0).re, spec.get(0).re);
        let double = spectrum_to_batch(&spec, 1, 1, Precision::Double);
        assert_eq!(double.get(0), spec.get(0));
        // Down to the 16-bit tiers and exactly back up.
        for p in [Precision::Half, Precision::BFloat16] {
            let narrow = spectrum_to_batch(&spec, 1, 1, p);
            assert_eq!(narrow.precision(), p);
            assert_ne!(narrow.get(0).re, spec.get(0).re);
            let widened = batch_to_spectrum(&narrow, 1, 1, Precision::Double);
            assert_eq!(widened.get(0), narrow.get(0), "widening must be exact");
        }
    }

    #[test]
    fn reorder_roundtrip_all_tier_pairs() {
        let (ns, nf) = (4, 5);
        let mut rng = SplitMix64::new(9);
        let data: Vec<fftmatvec_numeric::C64> = (0..ns * nf)
            .map(|_| fftmatvec_numeric::C64::new(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)))
            .collect();
        for p in Precision::ALL {
            // Once rounded into tier p, a p → p transpose roundtrip is
            // exact for every tier.
            let spec = ComplexBuffer::from_c64(p, &data);
            let batch = spectrum_to_batch(&spec, ns, nf, p);
            let back = batch_to_spectrum(&batch, ns, nf, p);
            assert_eq!(back, spec, "{p}");
        }
    }

    #[test]
    fn unpad_drops_padding_and_transposes() {
        // 2 series of length 2·2: series s has values [s0, s1, pad, pad].
        let time = RealBuffer::F64(vec![1.0, 2.0, 9.0, 9.0, 3.0, 4.0, 9.0, 9.0]);
        let out = unpad_output(&time, 2, 2, Precision::Double);
        // TOSI: t0 = [1,3], t1 = [2,4].
        assert_eq!(out, vec![1.0, 3.0, 2.0, 4.0]);
    }

    #[test]
    fn unpad_single_route_loses_bits() {
        let x = mantissa_stuff(0.7);
        let time = RealBuffer::F64(vec![x, 0.0]);
        let exact = unpad_output(&time, 1, 1, Precision::Double);
        assert_eq!(exact[0], x);
        let lossy = unpad_output(&time, 1, 1, Precision::Single);
        assert_ne!(lossy[0], x);
        assert!((lossy[0] - x).abs() / x.abs() < 1e-6);
    }

    #[test]
    fn unpad_route_is_lattice_meet() {
        let x = mantissa_stuff(0.7);
        // f32 storage routed through Single or Double: exact.
        let time32 = RealBuffer::F32(vec![x as f32, 0.0]);
        let stored = x as f32 as f64;
        assert_eq!(unpad_output(&time32, 1, 1, Precision::Double)[0], stored);
        assert_eq!(unpad_output(&time32, 1, 1, Precision::Single)[0], stored);
        // ... but a Half route still rounds an f32 value.
        let routed = unpad_output(&time32, 1, 1, Precision::Half)[0];
        assert_ne!(routed, stored);
        assert_eq!(routed, Precision::Half.round_f64(stored));
        // A value already in f16 storage routes exactly through any tier
        // except bf16 (the 16-bit tiers do not widen into each other):
        // 1 + 2⁻⁹ is exact in f16 (ε = 2⁻¹⁰) but rounds away in bf16.
        let h = 1.0 + 2f64.powi(-9);
        let time16 = RealBuffer::from_f64(Precision::Half, &[h, 0.0]);
        assert_eq!(unpad_output(&time16, 1, 1, Precision::Single)[0], h);
        assert_eq!(unpad_output(&time16, 1, 1, Precision::Half)[0], h);
        assert_ne!(unpad_output(&time16, 1, 1, Precision::BFloat16)[0], h);
    }
}
