//! The paper's first-order error bound (Section 3.2.1, Eq. 6).
//!
//! For the F matvec on a `p_r × p_c` grid:
//!
//! ```text
//! ‖δv₅‖/‖v₅‖ ≤ κ(F̂)·[ c₁ε₁ + (c_F·ε_d + c₂ε₂ + c₄ε₄)·log₂(N_t)
//!                      + c₃ε₃·n_m + c₅ε₅·log₂(p_c) ]
//! ```
//!
//! with `n_m = ⌈N_m/p_c⌉`, `ε_i` the machine epsilon of phase `i`'s
//! precision, `c₁ = 0` when phase 1 is double (a pure memory op is exact
//! in the input precision), and all other `c_i` treated as 1. The F*
//! bound swaps `n_m → n_d = ⌈N_d/p_r⌉` and `p_c → p_r`.

use fftmatvec_numeric::{Complex, Precision, C64};

use crate::linop::{ConfigurableOperator, OpDirection, OpError};
use crate::operator::BlockToeplitzOperator;
use crate::precision::{MatvecPhase, PrecisionConfig};

/// Inputs to the bound besides the precision configuration.
#[derive(Clone, Copy, Debug)]
pub struct BoundParams {
    /// Timesteps `N_t`.
    pub nt: usize,
    /// The local SBGEMV reduction length: `n_m` for F, `n_d` for F*.
    pub n_local: usize,
    /// Ranks the phase-5 reduction spans: `p_c` for F, `p_r` for F*.
    pub reduce_ranks: usize,
    /// Condition number (estimate) of `F̂`.
    pub kappa: f64,
}

impl BoundParams {
    /// Eq. 6 parameters for the **forward** matvec `d = F·m`: the GEMV
    /// reduces over `n_m = ⌈N_m/p_c⌉` and phase 5 reduces across the
    /// `p_c` column ranks.
    pub fn forward(nt: usize, nm: usize, p_c: usize, kappa: f64) -> Self {
        let p_c = p_c.max(1);
        BoundParams { nt, n_local: nm.div_ceil(p_c), reduce_ranks: p_c, kappa }
    }

    /// Eq. 6 parameters for the **adjoint** matvec `m = F*·d` — the
    /// documented `n_m → n_d = ⌈N_d/p_r⌉`, `p_c → p_r` swap.
    pub fn adjoint(nt: usize, nd: usize, p_r: usize, kappa: f64) -> Self {
        let p_r = p_r.max(1);
        BoundParams { nt, n_local: nd.div_ceil(p_r), reduce_ranks: p_r, kappa }
    }

    /// Direction-dispatching constructor over a `p_r × p_c` grid.
    pub fn for_direction(
        dir: OpDirection,
        nt: usize,
        nd: usize,
        nm: usize,
        p_r: usize,
        p_c: usize,
        kappa: f64,
    ) -> Self {
        match dir {
            OpDirection::Forward => BoundParams::forward(nt, nm, p_c, kappa),
            OpDirection::Adjoint => BoundParams::adjoint(nt, nd, p_r, kappa),
        }
    }
}

/// The evaluated bound, with the per-phase contributions kept visible.
#[derive(Clone, Copy, Debug)]
pub struct ErrorBound {
    /// Phase-1 (pad/broadcast) term `c₁ε₁`.
    pub pad: f64,
    /// Setup + FFT + IFFT term `(ε_d + ε₂ + ε₄)·log₂(N_t)` pieces.
    pub transforms: f64,
    /// SBGEMV term `ε₃·n_local` — the dominant one.
    pub gemv: f64,
    /// Reduction term `ε₅·log₂(reduce_ranks)`.
    pub reduction: f64,
    /// κ·(sum of the above).
    pub total: f64,
}

/// Evaluate Eq. (6).
pub fn error_bound(cfg: PrecisionConfig, p: &BoundParams) -> ErrorBound {
    let e = |ph: MatvecPhase| cfg.phase(ph).epsilon();
    let log_nt = (p.nt.max(2) as f64).log2();
    let log_pc = if p.reduce_ranks > 1 { (p.reduce_ranks as f64).log2() } else { 0.0 };

    let pad =
        if cfg.phase(MatvecPhase::Pad) == Precision::Double { 0.0 } else { e(MatvecPhase::Pad) };
    let transforms =
        (Precision::Double.epsilon() + e(MatvecPhase::Fft) + e(MatvecPhase::Ifft)) * log_nt;
    let gemv = e(MatvecPhase::Sbgemv) * p.n_local as f64;
    // The paper's Eq. (6) charges phase 5 only for the reduction
    // (log₂ p_c); but a single-precision phase-5 *memory op* also rounds
    // the final output once, exactly like the phase-1 term — include it,
    // or the bound is violated by `dddds` on a single rank.
    let unpad_memop = if cfg.phase(MatvecPhase::Unpad) == Precision::Double {
        0.0
    } else {
        e(MatvecPhase::Unpad)
    };
    let reduction = unpad_memop + e(MatvecPhase::Unpad) * log_pc;
    let total = p.kappa * (pad + transforms + gemv + reduction);
    ErrorBound { pad, transforms, gemv, reduction, total }
}

/// Measured matvec error of `cfg` in direction `dir` against the
/// all-double baseline, next to its Eq. 6 prediction — for **any**
/// [`ConfigurableOperator`] realization. The bound-vs-measurement pairing
/// the paper's §4.2.1 validation plots are built from. Delegates the
/// measurement (and its restore-config-even-on-error discipline) to
/// [`crate::pareto::error_sweep`] so that logic lives in one place.
///
/// `params` must describe the same side of the operator as `dir`
/// (use [`BoundParams::forward`]/[`BoundParams::adjoint`]) — the F and
/// F* bounds differ in their GEMV reduction length, which is exactly why
/// the measurement direction is explicit here.
pub fn measured_vs_bound(
    op: &mut dyn ConfigurableOperator,
    dir: OpDirection,
    cfg: PrecisionConfig,
    params: &BoundParams,
    input: &[f64],
) -> Result<(f64, ErrorBound), OpError> {
    let errors = crate::pareto::error_sweep(op, dir, &[cfg], input)?;
    Ok((errors[0], error_bound(cfg, params)))
}

/// Estimate `κ(F̂)` — the condition number of the block-diagonal frequency
/// matrix: `max_k σ_max(F̂_k) / min_k σ_min(F̂_k)`.
///
/// Extreme singular values per frequency come from power iteration on
/// `B_k = F̂_k·F̂_kᴴ` (`n_d × n_d`) and on its spectral complement
/// `λ_max·I − B_k`. `freq_stride` subsamples the frequencies to bound the
/// cost at large `N_t` (pass 1 to scan all).
pub fn condition_estimate(op: &BlockToeplitzOperator, freq_stride: usize) -> f64 {
    let stride = freq_stride.max(1);
    let (nd, nm) = (op.nd(), op.nm());
    let mut sig_max: f64 = 0.0;
    let mut sig_min = f64::INFINITY;
    let mut f = 0;
    while f < op.nfreq() {
        let block = &op.fhat()[f * nd * nm..(f + 1) * nd * nm];
        let b = gram(block, nd, nm);
        let lmax = power_iterate(&b, nd, 40);
        // λ_min via power iteration on (λ_max·I − B).
        let shifted: Vec<C64> = (0..nd * nd)
            .map(|i| {
                let diag = i % nd == i / nd;
                let v = if diag { Complex::from_real(lmax) } else { Complex::zero() };
                v - b[i]
            })
            .collect();
        let mu = power_iterate(&shifted, nd, 40);
        let lmin = (lmax - mu).max(0.0);
        sig_max = sig_max.max(lmax.sqrt());
        sig_min = sig_min.min(lmin.max(1e-300).sqrt());
        f += stride;
    }
    (sig_max / sig_min).max(1.0)
}

/// `B = M·Mᴴ` for a column-major `nd × nm` block (B is `nd × nd`,
/// column-major).
fn gram(m: &[C64], nd: usize, nm: usize) -> Vec<C64> {
    let mut b = vec![Complex::zero(); nd * nd];
    for k in 0..nm {
        let col = &m[k * nd..(k + 1) * nd];
        for j in 0..nd {
            let cj = col[j].conj();
            for i in 0..nd {
                b[j * nd + i] += col[i] * cj;
            }
        }
    }
    b
}

/// Largest eigenvalue of a Hermitian PSD matrix by power iteration.
fn power_iterate(b: &[C64], n: usize, iters: usize) -> f64 {
    let mut v: Vec<C64> =
        (0..n).map(|i| Complex::new(1.0 + (i as f64) * 0.3, 0.5 - (i as f64) * 0.1)).collect();
    let mut lambda = 0.0;
    for _ in 0..iters {
        let mut w = vec![Complex::<f64>::zero(); n];
        for j in 0..n {
            let vj = v[j];
            for i in 0..n {
                w[i] += b[j * n + i] * vj;
            }
        }
        let norm: f64 = w.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt();
        if norm == 0.0 {
            return 0.0;
        }
        lambda = norm;
        let inv = 1.0 / norm;
        for (vi, &wi) in v.iter_mut().zip(&w) {
            *vi = wi.scale(inv);
        }
    }
    // For PSD B and normalized v, λ ≈ ‖Bv‖ at convergence.
    lambda
}

#[cfg(test)]
mod tests {
    use super::*;
    use fftmatvec_numeric::SplitMix64;

    fn params(n_local: usize, ranks: usize) -> BoundParams {
        BoundParams { nt: 1000, n_local, reduce_ranks: ranks, kappa: 1.0 }
    }

    #[test]
    fn all_double_bound_is_tiny() {
        let b = error_bound(PrecisionConfig::all_double(), &params(5000, 1));
        assert_eq!(b.pad, 0.0);
        assert_eq!(b.reduction, 0.0);
        assert!(b.total < 1e-11, "double bound {}", b.total);
    }

    #[test]
    fn gemv_term_dominates_for_single_sbgemv() {
        // The paper: "the dominant error term comes from the SBGEMV".
        let cfg = PrecisionConfig::optimal_forward(); // dssdd
        let b = error_bound(cfg, &params(5000, 1));
        assert!(b.gemv > b.transforms);
        assert!(b.gemv > 10.0 * (b.pad + b.reduction + b.transforms));
        // ε_s·5000 ≈ 6e-4.
        assert!((b.gemv - f32::EPSILON as f64 * 5000.0).abs() < 1e-12);
    }

    #[test]
    fn bound_grows_with_local_width_and_ranks() {
        let cfg: PrecisionConfig = "dssds".parse().unwrap();
        let small = error_bound(cfg, &params(5000, 8));
        let wide = error_bound(cfg, &params(80_000, 8));
        let many = error_bound(cfg, &params(5000, 4096));
        assert!(wide.total > small.total, "n_local growth");
        assert!(many.total > small.total, "rank growth");
    }

    #[test]
    fn kappa_scales_linearly() {
        let cfg = PrecisionConfig::optimal_forward();
        let mut p = params(5000, 1);
        let b1 = error_bound(cfg, &p).total;
        p.kappa = 10.0;
        let b10 = error_bound(cfg, &p).total;
        assert!((b10 / b1 - 10.0).abs() < 1e-9);
    }

    #[test]
    fn single_phase5_memop_term_plus_rank_scaling() {
        let cfg: PrecisionConfig = "dddds".parse().unwrap();
        // One rank: the memory-op rounding alone (our Eq.-6 correction).
        let lone = error_bound(cfg, &params(100, 1));
        assert!((lone.reduction - f32::EPSILON as f64).abs() < 1e-12);
        // 256 ranks: memop + log2(256)·ε reduction error.
        let multi = error_bound(cfg, &params(100, 256));
        assert!((multi.reduction - f32::EPSILON as f64 * 9.0).abs() < 1e-10);
        // Double phase 5 contributes nothing on one rank.
        let dd = error_bound(PrecisionConfig::all_double(), &params(100, 1));
        assert_eq!(dd.reduction, 0.0);
    }

    #[test]
    fn bound_is_ordered_across_the_four_tiers() {
        // Per-phase ε drives Eq. 6, so uniform-tier bounds order by ε:
        // ddddd < dssdd < sssss < hhhhh < bbbbb. Note the two 16-bit
        // tiers order by accuracy (ε_h = 2⁻¹⁰ < ε_b = 2⁻⁷), *not* by the
        // lattice convention.
        let p = params(5000, 1);
        let total = |s: &str| error_bound(s.parse().unwrap(), &p).total;
        let (d, opt, s, h, b) =
            (total("ddddd"), total("dssdd"), total("sssss"), total("hhhhh"), total("bbbbb"));
        assert!(d < opt, "{d} !< {opt}");
        assert!(opt < s, "{opt} !< {s}");
        assert!(s < h, "{s} !< {h}");
        assert!(h < b, "{h} !< {b}");
        // The gemv term still dominates in the 16-bit tiers.
        let hb = error_bound("dhhdd".parse().unwrap(), &p);
        assert!(hb.gemv > 10.0 * (hb.pad + hb.transforms + hb.reduction));
        assert!((hb.gemv - Precision::Half.epsilon() * 5000.0).abs() < 1e-12);
    }

    #[test]
    fn measured_vs_bound_for_any_operator() {
        use crate::pipeline::FftMatvec;
        let (nd, nm, nt) = (2usize, 16usize, 8usize);
        let mut rng = SplitMix64::new(17);
        let mut col = vec![0.0; nt * nd * nm];
        rng.fill_uniform(&mut col, 0.0, 1.0);
        let op = BlockToeplitzOperator::from_first_block_column(nd, nm, nt, &col).unwrap();
        let mut m = vec![0.0; nm * nt];
        rng.fill_uniform_stuffed(&mut m, 0.0, 1.0);
        let mut mv = FftMatvec::builder(op).build().unwrap();
        let p = BoundParams { nt, n_local: nm, reduce_ranks: 1, kappa: 100.0 };
        let (measured, bound) =
            measured_vs_bound(&mut mv, OpDirection::Forward, "dssdd".parse().unwrap(), &p, &m)
                .unwrap();
        assert!(measured > 0.0, "stuffed input must measure error");
        assert!(measured <= bound.total, "measured {measured} above bound {}", bound.total);
        // Errors surface as values, not panics — and the operator's own
        // configuration survives the failed sweep.
        mv.set_config("ddssd".parse().unwrap());
        let r = measured_vs_bound(
            &mut mv,
            OpDirection::Forward,
            PrecisionConfig::all_double(),
            &p,
            &m[1..],
        );
        assert!(r.is_err());
        assert_eq!(mv.config(), "ddssd".parse().unwrap());
    }

    #[test]
    fn bound_params_constructors_swap_the_documented_dimensions() {
        // Forward: n_local = ⌈N_m/p_c⌉, reduce over p_c columns.
        let f = BoundParams::forward(1000, 5000, 8, 2.0);
        assert_eq!((f.n_local, f.reduce_ranks), (625, 8));
        // Adjoint: n_local = ⌈N_d/p_r⌉, reduce over p_r rows.
        let a = BoundParams::adjoint(1000, 300, 4, 2.0);
        assert_eq!((a.n_local, a.reduce_ranks), (75, 4));
        // Dispatch matches the explicit constructors.
        let viaf = BoundParams::for_direction(OpDirection::Forward, 1000, 300, 5000, 4, 8, 2.0);
        assert_eq!((viaf.n_local, viaf.reduce_ranks), (f.n_local, f.reduce_ranks));
        let viaa = BoundParams::for_direction(OpDirection::Adjoint, 1000, 300, 5000, 4, 8, 2.0);
        assert_eq!((viaa.n_local, viaa.reduce_ranks), (a.n_local, a.reduce_ranks));
        // Zero ranks clamp to a single rank instead of dividing by zero.
        assert_eq!(BoundParams::forward(10, 7, 0, 1.0).n_local, 7);
    }

    #[test]
    fn adjoint_measured_error_needs_the_adjoint_bound() {
        // Regression for the direction bug: the sweeps hard-coded
        // `apply_forward`, so an adjoint budget could only ever be
        // validated against the forward operator. Construct a tall
        // single-column operator (nd ≫ nm = 1, block 0 = 1/√nd ones):
        // every F̂_k is that same unit column, so κ(F̂) = 1 exactly. For
        // the paper's adjoint-optimal `ddssd`, the adjoint-side Eq. 6
        // prediction carries `ε₃·n_d = 4096·ε_s` where the forward side
        // carries `ε₃·n_m = ε_s` — the forward prediction is not a bound
        // anyone may promise for `F*`. Only the direction-aware pairing
        // measures the right operator against the right prediction.
        use crate::pipeline::FftMatvec;
        let (nd, nm, nt) = (4096usize, 1usize, 16usize);
        let mut col = vec![0.0; nt * nd * nm];
        let s = 1.0 / (nd as f64).sqrt();
        for i in 0..nd {
            col[i] = s; // block 0: the unit column; later blocks zero
        }
        let op = BlockToeplitzOperator::from_first_block_column(nd, nm, nt, &col).unwrap();
        // κ(F̂) = 1 by construction (each F̂_k has the single singular
        // value ‖column‖ = 1). `condition_estimate` is not usable here:
        // it power-iterates the nd × nd Gram matrix, which is rank-1 for
        // a single-column operator.
        let kappa = 1.0;

        let mut mv = FftMatvec::builder(op).build().unwrap();
        let cfg: PrecisionConfig = "ddssd".parse().unwrap();
        let adj_params = BoundParams::adjoint(nt, nd, 1, kappa);
        let fwd_params = BoundParams::forward(nt, nm, 1, kappa);
        let adj_bound_total = error_bound(cfg, &adj_params).total;
        let fwd_bound_total = error_bound(cfg, &fwd_params).total;
        assert!(
            fwd_bound_total < adj_bound_total / 50.0,
            "the documented n_m→n_d swap must separate the two sides: \
             fwd {fwd_bound_total} adj {adj_bound_total}"
        );

        // All-positive data keeps the same-sign accumulation honest.
        let mut rng = SplitMix64::new(101);
        let mut d = vec![0.0; nd * nt];
        rng.fill_uniform_stuffed(&mut d, 0.5, 1.0);
        let (adj_measured, adj_bound) =
            measured_vs_bound(&mut mv, OpDirection::Adjoint, cfg, &adj_params, &d).unwrap();
        assert!(adj_measured > 0.0);
        assert!(
            adj_measured <= adj_bound.total,
            "adjoint measured {adj_measured} must sit under the adjoint bound {}",
            adj_bound.total
        );
        // The old pairing could not even have produced this measurement:
        // feeding the adjoint-sized data to the forward operator — what
        // the direction-blind sweep did — is a length error on this
        // non-square shape.
        let err =
            measured_vs_bound(&mut mv, OpDirection::Forward, cfg, &fwd_params, &d).unwrap_err();
        assert_eq!(
            err,
            crate::linop::OpError::InputLength {
                dir: OpDirection::Forward,
                expected: nm * nt,
                got: nd * nt
            }
        );
    }

    #[test]
    fn condition_estimate_identity_like_operator() {
        // First block = I (padded), rest zero ⇒ F̂_k = I for every k ⇒ κ = 1.
        let (nd, nm, nt) = (3usize, 3usize, 4usize);
        let mut col = vec![0.0; nt * nd * nm];
        for i in 0..nd {
            col[i * nm + i] = 1.0;
        }
        let op = BlockToeplitzOperator::from_first_block_column(nd, nm, nt, &col).unwrap();
        let kappa = condition_estimate(&op, 1);
        assert!((kappa - 1.0).abs() < 1e-6, "kappa {kappa}");
    }

    #[test]
    fn condition_estimate_detects_scaling() {
        // Diagonal first block diag(1, 100): κ(F̂_k) = 100 at every k.
        let (nd, nm, nt) = (2usize, 2usize, 4usize);
        let mut col = vec![0.0; nt * nd * nm];
        col[0] = 1.0; // block 0, row 0, col 0
        col[nm + 1] = 100.0; // block 0, row 1, col 1
        let op = BlockToeplitzOperator::from_first_block_column(nd, nm, nt, &col).unwrap();
        let kappa = condition_estimate(&op, 1);
        assert!((kappa - 100.0).abs() / 100.0 < 0.05, "kappa {kappa}");
    }

    #[test]
    fn condition_estimate_random_operator_reasonable() {
        let mut rng = SplitMix64::new(3);
        let (nd, nm, nt) = (4usize, 16usize, 8usize);
        let mut col = vec![0.0; nt * nd * nm];
        rng.fill_uniform(&mut col, -1.0, 1.0);
        let op = BlockToeplitzOperator::from_first_block_column(nd, nm, nt, &col).unwrap();
        let kappa = condition_estimate(&op, 1);
        assert!(kappa >= 1.0 && kappa.is_finite());
        // Subsampling must not change the order of magnitude here.
        let coarse = condition_estimate(&op, 3);
        assert!(coarse <= kappa * 1.5 + 1.0);
    }
}
