//! Property-based tests for the FFTMatvec pipeline invariants, across
//! randomly drawn shapes and all precision configurations:
//! exactness in double, linearity, causality, adjoint consistency,
//! distributed-vs-single agreement, and the Eq.-6 bound holding on
//! measured errors.

use fftmatvec_comm::ProcessGrid;
use fftmatvec_core::autotune::{admissible_configs, autotune};
use fftmatvec_core::error_analysis::{condition_estimate, error_bound, BoundParams};
use fftmatvec_core::{
    BlockToeplitzOperator, ConfigError, DirectMatvec, DistributedFftMatvec, FftMatvec,
    LinearOperator, OpDirection, OpError, PhaseWeights, PrecisionConfig, TierCalibration,
};
use fftmatvec_numeric::vecmath::rel_l2_error;
use fftmatvec_numeric::{Precision, SplitMix64};
use proptest::prelude::*;

fn operator(nd: usize, nm: usize, nt: usize, seed: u64) -> BlockToeplitzOperator {
    let mut rng = SplitMix64::new(seed);
    let mut col = vec![0.0; nt * nd * nm];
    rng.fill_uniform(&mut col, 0.0, 1.0);
    BlockToeplitzOperator::from_first_block_column(nd, nm, nt, &col).unwrap()
}

fn stuffed(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = SplitMix64::new(seed);
    let mut v = vec![0.0; n];
    rng.fill_uniform_stuffed(&mut v, 0.0, 1.0);
    v
}

/// Identity-plus-noise first block: κ(F̂) stays near 1, so the Eq. 6
/// pruning admits genuinely narrow configurations at loose budgets.
fn well_conditioned(nd: usize, nm: usize, nt: usize, seed: u64) -> BlockToeplitzOperator {
    let mut rng = SplitMix64::new(seed);
    let mut col = vec![0.0; nt * nd * nm];
    let mut noise = vec![0.0; nd * nm];
    rng.fill_uniform(&mut noise, -0.05, 0.05);
    for i in 0..nd {
        for k in 0..nm {
            col[i * nm + k] = noise[i * nm + k] + if i == k { 1.0 } else { 0.0 };
        }
    }
    BlockToeplitzOperator::from_first_block_column(nd, nm, nt, &col).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// FFT path == direct block convolution in double precision.
    #[test]
    fn fft_equals_direct(
        nd in 1usize..6,
        nm in 1usize..24,
        nt in 1usize..24,
        seed in 0u64..u64::MAX,
    ) {
        let op = operator(nd, nm, nt, seed);
        let m = stuffed(nm * nt, seed ^ 1);
        let direct = DirectMatvec::new(&op).apply_forward(&m).unwrap();
        let mv = FftMatvec::builder(op).build().unwrap();
        let fft = mv.apply_forward(&m).unwrap();
        prop_assert!(rel_l2_error(&fft, &direct) < 1e-12);
    }

    /// ⟨F·m, d⟩ == ⟨m, F*·d⟩ in double precision, any shape.
    #[test]
    fn adjoint_identity(
        nd in 1usize..6,
        nm in 1usize..20,
        nt in 1usize..16,
        seed in 0u64..u64::MAX,
    ) {
        let op = operator(nd, nm, nt, seed);
        let mv = FftMatvec::builder(op).build().unwrap();
        let mut rng = SplitMix64::new(seed ^ 2);
        let mut m = vec![0.0; nm * nt];
        let mut d = vec![0.0; nd * nt];
        rng.fill_uniform(&mut m, -1.0, 1.0);
        rng.fill_uniform(&mut d, -1.0, 1.0);
        let lhs: f64 = mv.apply_forward(&m).unwrap().iter().zip(&d).map(|(a, b)| a * b).sum();
        let rhs: f64 = m.iter().zip(&mv.apply_adjoint(&d).unwrap()).map(|(a, b)| a * b).sum();
        prop_assert!((lhs - rhs).abs() < 1e-10 * lhs.abs().max(rhs.abs()).max(1.0));
    }

    /// The operator is causal: output before the input's first active
    /// block is exactly zero (block lower-triangular structure) in every
    /// precision configuration.
    #[test]
    fn causality_all_configs(
        nd in 1usize..4,
        nm in 1usize..10,
        nt in 2usize..14,
        t0_frac in 0.0f64..1.0,
        cfg_idx in 0usize..32,
        seed in 0u64..u64::MAX,
    ) {
        let t0 = ((nt as f64 * t0_frac) as usize).min(nt - 1);
        let op = operator(nd, nm, nt, seed);
        let cfg = PrecisionConfig::all_configs()[cfg_idx];
        let mv = FftMatvec::builder(op).precision(cfg).build().unwrap();
        let mut m = vec![0.0; nm * nt];
        for k in 0..nm {
            m[t0 * nm + k] = 1.0 + k as f64;
        }
        let d = mv.apply_forward(&m).unwrap();
        for t in 0..t0 {
            for i in 0..nd {
                // FP32 FFT leaks a tiny amount across bins; bound by the
                // single-precision roundoff scale rather than exact zero.
                prop_assert!(d[t * nd + i].abs() < 2e-4 * (nm * nt) as f64,
                    "non-causal at t={t} (cfg {cfg})");
            }
        }
    }

    /// Measured error of any configuration obeys the Eq.-6 bound with a
    /// modest κ (positive uniform operators are well conditioned in the
    /// bulk; we use the measured κ proxy of 100).
    #[test]
    fn error_bound_holds(
        nd in 2usize..6,
        nm in 8usize..48,
        nt in 4usize..24,
        cfg_idx in 0usize..32,
        seed in 0u64..u64::MAX,
    ) {
        let op = operator(nd, nm, nt, seed);
        let m = stuffed(nm * nt, seed ^ 3);
        let mut mv = FftMatvec::builder(op).build().unwrap();
        let baseline = mv.apply_forward(&m).unwrap();
        let cfg = PrecisionConfig::all_configs()[cfg_idx];
        mv.set_config(cfg);
        let err = rel_l2_error(&mv.apply_forward(&m).unwrap(), &baseline);
        let bound = error_bound(cfg, &BoundParams {
            nt,
            n_local: nm,
            reduce_ranks: 1,
            kappa: 100.0,
        }).total;
        if cfg.is_all_double() {
            prop_assert!(err < 1e-13);
        } else {
            prop_assert!(err <= bound, "{cfg}: err {err} > bound {bound}");
        }
    }

    /// Distributed execution over any feasible grid reproduces the
    /// single-rank result in double precision.
    #[test]
    fn distributed_matches_single(
        nd in 1usize..5,
        nm in 2usize..16,
        nt in 1usize..10,
        rows_sel in 1usize..4,
        cols_sel in 1usize..5,
        seed in 0u64..u64::MAX,
    ) {
        let rows = rows_sel.min(nd);
        let cols = cols_sel.min(nm);
        let mut rng = SplitMix64::new(seed);
        let mut col = vec![0.0; nt * nd * nm];
        rng.fill_uniform(&mut col, -1.0, 1.0);
        let mut m = vec![0.0; nm * nt];
        rng.fill_uniform(&mut m, -1.0, 1.0);

        let single = DistributedFftMatvec::from_global(
            nd, nm, nt, &col, ProcessGrid::single(), PrecisionConfig::all_double()).unwrap();
        let dist = DistributedFftMatvec::from_global(
            nd, nm, nt, &col, ProcessGrid::new(rows, cols), PrecisionConfig::all_double()).unwrap();
        let want = single.apply_forward(&m).unwrap();
        let got = dist.apply_forward(&m).unwrap();
        prop_assert!(rel_l2_error(&got, &want) < 1e-11);
        // Adjoint too.
        let mut d = vec![0.0; nd * nt];
        rng.fill_uniform(&mut d, -1.0, 1.0);
        let want_a = single.apply_adjoint(&d).unwrap();
        let got_a = dist.apply_adjoint(&d).unwrap();
        prop_assert!(rel_l2_error(&got_a, &want_a) < 1e-11);
    }

    /// Round-tripping the config string through parse/format is identity,
    /// and the boundary precision is commutative.
    #[test]
    fn config_string_roundtrip(cfg_idx in 0usize..32) {
        let cfg = PrecisionConfig::all_configs()[cfg_idx];
        let s = cfg.to_string();
        let back: PrecisionConfig = s.parse().unwrap();
        prop_assert_eq!(cfg, back);
    }

    /// Parse/format roundtrip over the full 4⁵ lattice: every one of the
    /// 1024 `h`/`b`/`s`/`d` code strings is parseable, formats back to
    /// itself, and maps each phase to the tier its code digit names.
    #[test]
    fn full_lattice_string_roundtrip(cfg_idx in 0usize..1024) {
        let cfg = PrecisionConfig::all_configs_full()[cfg_idx];
        let s = cfg.to_string();
        prop_assert_eq!(s.len(), 5);
        let back: PrecisionConfig = s.parse().unwrap();
        prop_assert_eq!(cfg, back);
        // Each code digit names the phase tier it parses to.
        for (c, phase) in s.chars().zip(fftmatvec_core::MatvecPhase::ALL) {
            prop_assert_eq!(Precision::from_code(c).unwrap(), cfg.phase(phase));
        }
        // Uppercase parses to the same configuration.
        let upper: PrecisionConfig = s.to_ascii_uppercase().parse().unwrap();
        prop_assert_eq!(cfg, upper);
    }

    /// Invalid configuration strings are rejected: wrong lengths and any
    /// character outside the `h`/`b`/`s`/`d` code alphabet.
    #[test]
    fn config_string_rejection(cfg_idx in 0usize..1024, pos in 0usize..5, bad_sel in 0usize..8, len in 0usize..9) {
        let cfg = PrecisionConfig::all_configs_full()[cfg_idx];
        let s = cfg.to_string();
        // Wrong length: truncations and extensions of a valid string.
        if len != 5 {
            let wrong: String = s.chars().cycle().take(len).collect();
            prop_assert!(wrong.parse::<PrecisionConfig>().is_err(), "{wrong:?}");
        }
        // One corrupted code character.
        let bad = ['x', 'q', 'f', '1', ' ', 'z', 'é', '-'][bad_sel];
        let mut chars: Vec<char> = s.chars().collect();
        chars[pos] = bad;
        let corrupted: String = chars.into_iter().collect();
        prop_assert!(corrupted.parse::<PrecisionConfig>().is_err(), "{corrupted:?}");
    }

    /// `layout::cast_real` roundtrips are exact whenever the intermediate
    /// tier is wider (every value of the source tier is representable),
    /// and the up-cast itself never changes a value.
    #[test]
    fn cast_real_roundtrip_exact_when_wider(
        from_idx in 0usize..4,
        to_idx in 0usize..4,
        n in 1usize..64,
        seed in 0u64..u64::MAX,
    ) {
        let from = Precision::ALL[from_idx];
        let to = Precision::ALL[to_idx];
        let mut rng = SplitMix64::new(seed);
        let mut data = vec![0.0; n];
        rng.fill_uniform_stuffed(&mut data, -1.0, 1.0);
        let src = fftmatvec_numeric::RealBuffer::from_f64(from, &data);
        let cast = fftmatvec_core::layout::cast_real(src.clone(), to);
        prop_assert_eq!(cast.precision(), to);
        if from.widens_exactly_to(to) {
            // Widening is value-exact and the down-cast back is identity.
            for i in 0..n {
                prop_assert_eq!(cast.get(i), src.get(i), "{} → {} value", from, to);
            }
            let back = fftmatvec_core::layout::cast_real(cast, from);
            prop_assert_eq!(back, src, "{} → {} → {} roundtrip", from, to, from);
        }
    }

    /// Measured error of any *four-tier* configuration obeys the Eq.-6
    /// bound with the same κ proxy the two-tier property uses. Shapes are
    /// kept modest so the f16 dynamic range (max finite 65504) is never
    /// the binding constraint.
    #[test]
    fn error_bound_holds_full_lattice(
        nd in 2usize..5,
        nm in 8usize..32,
        nt in 4usize..16,
        cfg_idx in 0usize..1024,
        seed in 0u64..u64::MAX,
    ) {
        let op = operator(nd, nm, nt, seed);
        let m = stuffed(nm * nt, seed ^ 5);
        let mut mv = FftMatvec::builder(op).build().unwrap();
        let baseline = mv.apply_forward(&m).unwrap();
        let cfg = PrecisionConfig::all_configs_full()[cfg_idx];
        mv.set_config(cfg);
        let out = mv.apply_forward(&m).unwrap();
        prop_assert!(out.iter().all(|v| v.is_finite()), "{cfg}: non-finite output");
        let err = rel_l2_error(&out, &baseline);
        let bound = error_bound(cfg, &BoundParams {
            nt,
            n_local: nm,
            reduce_ranks: 1,
            kappa: 100.0,
        }).total;
        if cfg.is_all_double() {
            prop_assert!(err < 1e-13);
        } else {
            prop_assert!(err <= bound, "{cfg}: err {err} > bound {bound}");
        }
    }

    /// The autotuner's two promises hold for any shape, direction, and
    /// budget spanning all four tiers: the measured error of the chosen
    /// configuration stays at or under the budget, and no admissible
    /// configuration is strictly cheaper under the calibrated cost order
    /// (the winner sits within the 1% measurement-tie window of the
    /// minimum). Unsatisfiable budgets must be rejected with a floor
    /// that genuinely exceeds them.
    #[test]
    fn autotune_meets_budget_and_is_cost_minimal(
        nd in 2usize..5,
        nm in 4usize..12,
        nt in 4usize..12,
        dir_sel in 0usize..2,
        exp in -16i32..2,
        mant in 1.0f64..10.0,
        seed in 0u64..u64::MAX,
    ) {
        let dir = [OpDirection::Forward, OpDirection::Adjoint][dir_sel];
        let budget = mant * 10f64.powi(exp);
        let op = well_conditioned(nd, nm, nt, seed);
        let kappa = condition_estimate(&op, 1);
        let mut mv = FftMatvec::builder(op).build().unwrap();
        let params = BoundParams::for_direction(dir, nt, nd, nm, 1, 1, kappa);
        let weights = PhaseWeights::for_shape(nd, nm, nt, dir);
        let mut calib = TierCalibration::new();
        match autotune(&mut mv, dir, budget, &params, &weights, &mut calib) {
            Err(OpError::Config(ConfigError::BudgetUnsatisfiable { floor, .. })) => {
                prop_assert!(floor > budget, "rejection floor {floor} ≤ budget {budget}");
            }
            Err(e) => prop_assert!(false, "unexpected autotune error: {e:?}"),
            Ok(choice) => {
                prop_assert!(choice.bound.total <= budget);
                prop_assert_eq!(choice.direction, dir);
                // Cost minimality: every admissible configuration predicts
                // at least winner/1.01 under the calibration autotune left
                // behind (all needed tiers are seeded by construction).
                for (cfg, _) in admissible_configs(budget, &params) {
                    let cost = calib.predict(cfg, dir, &weights).unwrap();
                    prop_assert!(
                        cost >= choice.predicted_seconds / 1.01,
                        "{cfg} at {cost} undercuts winner {} at {}",
                        choice.config, choice.predicted_seconds
                    );
                }
                // Install the winner and check the measured error honors
                // the promise.
                mv.set_config(choice.config);
                let in_len = match dir {
                    OpDirection::Forward => nm * nt,
                    OpDirection::Adjoint => nd * nt,
                };
                let x = stuffed(in_len, seed ^ 9);
                let measured = fftmatvec_core::pareto::error_sweep(
                    &mut mv, dir, &[choice.config], &x).unwrap()[0];
                prop_assert!(
                    measured <= budget,
                    "measured {measured} over budget {budget} ({} in {dir})",
                    choice.config
                );
            }
        }
    }
}
