//! The paper's artifact-evaluation workflow (AD/AE appendix), scaled to
//! test size: run the baseline, sweep the 32 mixed-precision
//! configurations, compute errors against the double output, pick the
//! optimal configuration for the tolerance, and verify the figure-level
//! claims that the harness binaries print.

use fftmatvec::core::pareto::{optimal_for_tolerance, pareto_front, ParetoPoint};
use fftmatvec::core::timing::{simulate_phases, MatvecDims};
use fftmatvec::core::{BlockToeplitzOperator, FftMatvec, LinearOperator, PrecisionConfig};
use fftmatvec::gpu::{DeviceSpec, Phase};
use fftmatvec::numeric::vecmath::rel_l2_error;
use fftmatvec::numeric::SplitMix64;

/// The artifact's `-rand` initialization: positive uniforms (the cuRAND
/// path) with mantissa stuffing.
fn artifact_workload(nd: usize, nm: usize, nt: usize) -> (BlockToeplitzOperator, Vec<f64>) {
    let mut rng = SplitMix64::new(769);
    let mut col = vec![0.0; nt * nd * nm];
    rng.fill_uniform(&mut col, 0.0, 1.0);
    let op = BlockToeplitzOperator::from_first_block_column(nd, nm, nt, &col).unwrap();
    let mut m = vec![0.0; nm * nt];
    rng.fill_uniform_stuffed(&mut m, 0.0, 1.0);
    (op, m)
}

#[test]
fn thirty_two_config_sweep_selects_dssdd_at_1e7() {
    let (op, m) = artifact_workload(24, 768, 128);
    let mut mv = FftMatvec::builder(op).build().unwrap();
    let baseline = mv.apply_forward(&m).unwrap();

    let dims = MatvecDims::paper_single_gpu();
    let dev = DeviceSpec::mi250x_gcd();
    let mut points = Vec::with_capacity(32);
    for cfg in PrecisionConfig::all_configs() {
        mv.set_config(cfg);
        let rel_error = rel_l2_error(&mv.apply_forward(&m).unwrap(), &baseline);
        let time = simulate_phases(dims, cfg, false, &dev).total();
        points.push(ParetoPoint { config: cfg, time, rel_error });
    }

    // The paper's headline selection at tolerance 1e-7.
    let best = optimal_for_tolerance(&points, 1e-7).expect("a config meets 1e-7");
    assert_eq!(best.config.to_string(), "dssdd", "paper's optimum");
    assert!(best.rel_error > 0.0 && best.rel_error <= 1e-7);

    // Every front point with single-precision SBGEMV must carry error in
    // the FP32 regime; the all-double baseline anchors the front.
    let front = pareto_front(&points);
    assert!(front.iter().any(|p| p.config.is_all_double()));
    assert!(front.len() >= 3, "front should have meaningful spread");

    // Configurations that lower memory-phase precision without touching
    // SBGEMV/FFT gain (almost) nothing — the paper's "off the front"
    // observation. Compare sdddd to the baseline.
    let base_t = points.iter().find(|p| p.config.is_all_double()).unwrap().time;
    let sd = points.iter().find(|p| p.config.to_string() == "sdddd").unwrap();
    assert!(base_t / sd.time < 1.05, "pad-only speedup should be negligible");
}

#[test]
fn figure2_claim_sbgemv_share() {
    let dims = MatvecDims::paper_single_gpu();
    for dev in DeviceSpec::paper_lineup() {
        for adjoint in [false, true] {
            let t = simulate_phases(dims, PrecisionConfig::all_double(), adjoint, &dev);
            let share = t.fraction(Phase::Sbgemv);
            assert!(
                share > 0.85,
                "{} adjoint={adjoint}: SBGEMV share {share:.3} too small",
                dev.name
            );
        }
    }
}

#[test]
fn figure3_claim_speedup_bands() {
    let dims = MatvecDims::paper_single_gpu();
    let double = PrecisionConfig::all_double();
    let mixed = PrecisionConfig::optimal_forward();
    let speedup = |dev: &DeviceSpec| {
        simulate_phases(dims, double, false, dev).total()
            / simulate_phases(dims, mixed, false, dev).total()
    };
    // Paper: 70–95% on CDNA2/3, ~40% on CDNA4.
    assert!((1.6..2.0).contains(&speedup(&DeviceSpec::mi250x_gcd())));
    assert!((1.7..2.0).contains(&speedup(&DeviceSpec::mi300x())));
    assert!((1.25..1.55).contains(&speedup(&DeviceSpec::mi355x())));
}

#[test]
fn error_tolerance_is_not_met_by_all_single() {
    // The paper's tolerance argument needs sssss to be measurably worse
    // than dssdd — otherwise the Pareto analysis would be vacuous.
    let (op, m) = artifact_workload(24, 768, 128);
    let mut mv = FftMatvec::builder(op).build().unwrap();
    let baseline = mv.apply_forward(&m).unwrap();
    mv.set_config(PrecisionConfig::optimal_forward());
    let e_opt = rel_l2_error(&mv.apply_forward(&m).unwrap(), &baseline);
    mv.set_config(PrecisionConfig::all_single());
    let e_all = rel_l2_error(&mv.apply_forward(&m).unwrap(), &baseline);
    assert!(e_all > e_opt, "all-single must be less accurate ({e_all} vs {e_opt})");
}
