//! Cross-crate integration tests: every layer of the stack agreeing with
//! every other — FFT pipeline vs direct convolution vs dense algebra,
//! single-rank vs distributed, the PDE layer vs the Toeplitz layer, and
//! the timing/portability substrates staying consistent with the compute
//! path.

use fftmatvec::comm::{NetworkModel, ProcessGrid};
use fftmatvec::core::timing::{simulate_phases, MatvecDims};
use fftmatvec::core::{
    BlockToeplitzOperator, DirectMatvec, DistributedFftMatvec, FftMatvec, LinearOperator,
    PrecisionConfig,
};
use fftmatvec::gpu::{DeviceSpec, Phase};
use fftmatvec::lti::{HeatEquation1D, LtiSystem, P2oMap};
use fftmatvec::numeric::vecmath::rel_l2_error;
use fftmatvec::numeric::SplitMix64;
use fftmatvec::portability::{GpuVendor, PortabilityBackend};

fn random_operator(nd: usize, nm: usize, nt: usize, seed: u64) -> BlockToeplitzOperator {
    let mut rng = SplitMix64::new(seed);
    let mut col = vec![0.0; nt * nd * nm];
    rng.fill_uniform(&mut col, -1.0, 1.0);
    BlockToeplitzOperator::from_first_block_column(nd, nm, nt, &col).unwrap()
}

#[test]
fn fft_direct_and_dense_all_agree() {
    let (nd, nm, nt) = (3usize, 9usize, 12usize);
    let op = random_operator(nd, nm, nt, 1);
    let dense = op.dense();
    let mut rng = SplitMix64::new(2);
    let mut m = vec![0.0; nm * nt];
    rng.fill_uniform(&mut m, -1.0, 1.0);

    let rows = nd * nt;
    let cols = nm * nt;
    let want: Vec<f64> =
        (0..rows).map(|i| (0..cols).map(|j| dense[i * cols + j] * m[j]).sum()).collect();

    let direct = DirectMatvec::new(&op).apply_forward(&m).unwrap();
    assert!(rel_l2_error(&direct, &want) < 1e-13, "direct vs dense");

    let mv = FftMatvec::builder(op).build().unwrap();
    let fft = mv.apply_forward(&m).unwrap();
    assert!(rel_l2_error(&fft, &want) < 1e-12, "fft vs dense");
}

#[test]
fn distributed_equals_single_rank_for_every_config_on_a_grid() {
    let (nd, nm, nt) = (4usize, 12usize, 8usize);
    let mut rng = SplitMix64::new(3);
    let mut col = vec![0.0; nt * nd * nm];
    rng.fill_uniform(&mut col, 0.0, 1.0);
    let mut m = vec![0.0; nm * nt];
    rng.fill_uniform_stuffed(&mut m, 0.0, 1.0);

    for cfg_str in ["ddddd", "dssdd", "dssds", "sssss"] {
        let cfg: PrecisionConfig = cfg_str.parse().unwrap();
        let single =
            DistributedFftMatvec::from_global(nd, nm, nt, &col, ProcessGrid::single(), cfg)
                .unwrap();
        let reference = single.apply_forward(&m).unwrap();
        let dist = DistributedFftMatvec::from_global(nd, nm, nt, &col, ProcessGrid::new(2, 3), cfg)
            .unwrap();
        let got = dist.apply_forward(&m).unwrap();
        // Partitioned execution reorders the floating-point reductions, so
        // results agree to the precision of the configuration, not bitwise.
        let tol = if cfg.is_all_double() { 1e-12 } else { 1e-5 };
        let err = rel_l2_error(&got, &reference);
        assert!(err < tol, "{cfg_str}: {err}");
    }
}

#[test]
fn pde_p2o_through_full_stack() {
    // Heat equation → adjoint-assembled p2o → FFT pipeline → observations
    // must equal brute-force time stepping; and the adjoint matvec must be
    // the gradient of the data misfit (finite-difference check).
    let sys = HeatEquation1D::new(20, 0.02, 0.3);
    let sensors = [5usize, 14];
    let nt = 10;
    let p2o = P2oMap::assemble(&sys, &sensors, nt).unwrap();
    let mv = FftMatvec::builder(p2o.operator).build().unwrap();

    let mut rng = SplitMix64::new(4);
    let mut m = vec![0.0; 20 * nt];
    rng.fill_uniform(&mut m, -1.0, 1.0);

    // Brute force observation.
    let traj = sys.forward_trajectory(&m, nt);
    let mut want = vec![0.0; 2 * nt];
    for k in 0..nt {
        for (i, &s) in sensors.iter().enumerate() {
            want[k * 2 + i] = traj[k * 20 + s];
        }
    }
    let got = mv.apply_forward(&m).unwrap();
    assert!(rel_l2_error(&got, &want) < 1e-11);

    // Gradient check: J(m) = ½‖F m − d‖²; ∇J = F*(F m − d).
    let mut d = vec![0.0; 2 * nt];
    rng.fill_uniform(&mut d, -1.0, 1.0);
    let resid: Vec<f64> = got.iter().zip(&d).map(|(a, b)| a - b).collect();
    let grad = mv.apply_adjoint(&resid).unwrap();
    let mut dir = vec![0.0; 20 * nt];
    rng.fill_uniform(&mut dir, -1.0, 1.0);
    let eps = 1e-6;
    let j = |mm: &[f64]| -> f64 {
        let f = mv.apply_forward(mm).unwrap();
        0.5 * f.iter().zip(&d).map(|(a, b)| (a - b) * (a - b)).sum::<f64>()
    };
    let m_plus: Vec<f64> = m.iter().zip(&dir).map(|(a, b)| a + eps * b).collect();
    let m_minus: Vec<f64> = m.iter().zip(&dir).map(|(a, b)| a - eps * b).collect();
    let fd = (j(&m_plus) - j(&m_minus)) / (2.0 * eps);
    let analytic: f64 = grad.iter().zip(&dir).map(|(a, b)| a * b).sum();
    assert!(
        (fd - analytic).abs() < 1e-5 * analytic.abs().max(1.0),
        "gradient check: fd {fd} vs analytic {analytic}"
    );
}

#[test]
fn simulated_times_respect_physical_sanity() {
    // The modeled compute never beats the device's peak bandwidth on the
    // bytes every phase must at least touch once.
    let dims = MatvecDims::new(100, 5000, 1000);
    for dev in DeviceSpec::paper_lineup() {
        for cfg_str in ["ddddd", "dssdd", "sssss"] {
            let cfg: PrecisionConfig = cfg_str.parse().unwrap();
            let t = simulate_phases(dims, cfg, false, &dev);
            // The matrix alone is (nt+1)*nd*nm complex elements.
            let p3 = cfg.phase(fftmatvec::core::MatvecPhase::Sbgemv);
            let matrix_bytes = (1001 * 100 * 5000 * p3.complex_bytes()) as f64;
            let floor = matrix_bytes / dev.peak_bw;
            assert!(
                t.get(Phase::Sbgemv) >= floor,
                "{} {cfg_str}: SBGEMV {} below bandwidth floor {}",
                dev.name,
                t.get(Phase::Sbgemv),
                floor
            );
            assert!(t.total() < 1.0, "modeled time should be sub-second");
        }
    }
}

#[test]
fn distributed_simulation_combines_compute_and_comm() {
    let (nd, nm, nt) = (4usize, 32usize, 8usize);
    let mut rng = SplitMix64::new(6);
    let mut col = vec![0.0; nt * nd * nm];
    rng.fill_uniform(&mut col, 0.0, 1.0);
    let net = NetworkModel::frontier();
    let dev = DeviceSpec::mi250x_gcd();

    let grids = [ProcessGrid::new(1, 4), ProcessGrid::new(2, 8), ProcessGrid::new(4, 8)];
    let mut prev_comm = 0.0;
    for grid in grids {
        let dist = DistributedFftMatvec::from_global(
            nd,
            nm,
            nt,
            &col,
            grid,
            PrecisionConfig::all_double(),
        )
        .unwrap();
        let t = dist.simulate(&dev, &net, false);
        let comm = t.get(Phase::Comm);
        assert!(comm > 0.0);
        assert!(comm >= prev_comm, "comm should not shrink as the grid grows here");
        prev_comm = comm;
    }
}

#[test]
fn hipified_application_and_compute_pipeline_share_kernel_names() {
    // The portability layer's artifact set covers the pipeline's phases:
    // pad, unpad, SBGEMV dispatch, FFT plans, reduction.
    let d = PortabilityBackend::build(GpuVendor::Hip, DeviceSpec::mi300x()).unwrap();
    for needed in
        ["pad_kernel.cu", "unpad_kernel.cu", "sbgemv_host.cu", "fft_host.cu", "nccl_reduce.cu"]
    {
        let art = d.artifact(needed).unwrap_or_else(|| panic!("missing {needed}"));
        assert!(art.replacements > 0);
    }
    // And the hipified SBGEMV host calls the rocBLAS entry points our BLAS
    // crate models.
    let sb = d.artifact("sbgemv_host.cu").unwrap();
    assert!(sb.source.contains("rocblas_zgemv_strided_batched"));
    assert!(sb.source.contains("rocblas_operation_conjugate_transpose"));
}
