//! Device-backend conformance suite, run against every registered
//! [`BackendKind`] — the contract of the PR that made `.backend(..)`
//! real:
//!
//! * every backend that executes serves **bit-identical** results to the
//!   CPU pool (the simulated device is the CPU pool plus a clock);
//! * the adjoint identity and typed-error contracts hold through the
//!   trait exactly as they do on the direct path;
//! * the CPU backend stays **zero-allocation** in the steady state when
//!   dispatched through `dyn DeviceBackend`;
//! * the simulated device accounts one logical upload and one download
//!   per pipeline pass and books modeled phase times;
//! * selecting the portability backend is a typed build-time error,
//!   never a panic, with and without the hipify factory installed;
//! * selection precedence is builder > `FFTMATVEC_BACKEND` > default.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use fftmatvec::backend::{BackendError, BackendKind, BACKEND_ENV};
use fftmatvec::core::{
    BlockToeplitzOperator, ConfigError, FftMatvec, LinearOperator, OpError, PipelineBackend,
};
use fftmatvec::gpu::Phase;
use fftmatvec::numeric::{Precision, RealBuffer, SplitMix64};
use fftmatvec::toeplitz::{ToeplitzGenerator, TwoLevelToeplitz};

/// Counts allocations made by the current thread (same pattern as
/// `operator_conformance.rs`; thread-local so parallel tests in this
/// binary cannot perturb each other's counts).
struct CountingAllocator;

thread_local! {
    static ALLOCATIONS: Cell<usize> = const { Cell::new(0) };
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn thread_allocations() -> usize {
    ALLOCATIONS.with(Cell::get)
}

const ND: usize = 3;
const NM: usize = 10;
const NT: usize = 8;

fn operator(seed: u64) -> BlockToeplitzOperator {
    let mut rng = SplitMix64::new(seed);
    let mut col = vec![0.0; NT * ND * NM];
    rng.fill_uniform(&mut col, -1.0, 1.0);
    BlockToeplitzOperator::from_first_block_column(ND, NM, NT, &col).unwrap()
}

fn pipeline(seed: u64, cfg: &str, backend: BackendKind) -> FftMatvec {
    FftMatvec::builder(operator(seed))
        .precision(cfg.parse().unwrap())
        .backend(backend)
        .build()
        .unwrap()
}

fn input(n: usize, seed: u64) -> Vec<f64> {
    let mut v = vec![0.0; n];
    SplitMix64::new(seed).fill_uniform(&mut v, -1.0, 1.0);
    v
}

/// Every executing backend must be bit-identical to the CPU pool, in
/// every precision configuration, both directions, including the batch
/// path.
#[test]
fn executing_backends_are_bit_identical_to_cpu_pool() {
    for cfg in ["ddddd", "dssdd", "hbsdd", "sssss"] {
        let cpu = pipeline(1, cfg, BackendKind::Cpu);
        let sim = pipeline(1, cfg, BackendKind::Simulated);
        let m = input(NM * NT, 2);
        let d = input(ND * NT, 3);
        assert_eq!(
            cpu.apply_forward(&m).unwrap(),
            sim.apply_forward(&m).unwrap(),
            "[{cfg}] forward"
        );
        assert_eq!(
            cpu.apply_adjoint(&d).unwrap(),
            sim.apply_adjoint(&d).unwrap(),
            "[{cfg}] adjoint"
        );
        let batch = input(4 * NM * NT, 5);
        let mut out_cpu = vec![0.0; 4 * ND * NT];
        let mut out_sim = vec![0.0; 4 * ND * NT];
        cpu.apply_forward_many_into(&batch, &mut out_cpu).unwrap();
        sim.apply_forward_many_into(&batch, &mut out_sim).unwrap();
        assert_eq!(out_cpu, out_sim, "[{cfg}] batch");
    }
}

/// The adjoint identity holds through the trait on every executing
/// backend.
#[test]
fn adjoint_identity_holds_per_backend() {
    for kind in [BackendKind::Cpu, BackendKind::Simulated] {
        let mv = pipeline(7, "ddddd", kind);
        let m = input(NM * NT, 8);
        let d = input(ND * NT, 9);
        let fm = mv.apply_forward(&m).unwrap();
        let fsd = mv.apply_adjoint(&d).unwrap();
        let lhs: f64 = fm.iter().zip(&d).map(|(a, b)| a * b).sum();
        let rhs: f64 = m.iter().zip(&fsd).map(|(a, b)| a * b).sum();
        assert!(
            (lhs - rhs).abs() <= 1e-11 * lhs.abs().max(rhs.abs()).max(1.0),
            "{kind:?}: adjoint identity {lhs} vs {rhs}"
        );
        assert_eq!(mv.backend(), kind);
        assert_eq!(mv.device().kind(), kind);
    }
}

/// The CPU pool through `dyn DeviceBackend` keeps the zero-allocation
/// steady state the direct path had.
#[test]
fn cpu_backend_is_zero_alloc_when_warm() {
    for cfg in ["ddddd", "dssdd"] {
        let mv = pipeline(11, cfg, BackendKind::Cpu);
        let m = input(NM * NT, 12);
        let d = input(ND * NT, 13);
        let mut fwd = vec![0.0; ND * NT];
        let mut adj = vec![0.0; NM * NT];
        for _ in 0..3 {
            mv.apply_forward_into(&m, &mut fwd).unwrap();
            mv.apply_adjoint_into(&d, &mut adj).unwrap();
        }
        let before = thread_allocations();
        for _ in 0..10 {
            mv.apply_forward_into(&m, &mut fwd).unwrap();
            mv.apply_adjoint_into(&d, &mut adj).unwrap();
        }
        assert_eq!(
            thread_allocations() - before,
            0,
            "[{cfg}] allocations across 20 warmed-up applies via CpuPool"
        );
    }
}

/// The simulated device accounts exactly one logical upload (the pad
/// edge) and one download (the unpad edge) per pipeline pass, with the
/// right byte counts, and books modeled FFT phase time.
#[test]
fn simulated_device_accounts_transfers_and_phases() {
    let mv = pipeline(17, "dssdd", BackendKind::Simulated);
    let device = mv.device().clone();
    let m = input(NM * NT, 18);
    let applies = 5u64;
    for _ in 0..applies {
        mv.apply_forward(&m).unwrap();
    }
    let stats = device.transfers();
    assert_eq!(stats.uploads, applies);
    assert_eq!(stats.downloads, applies);
    assert_eq!(stats.bytes_up, applies * (NM * NT * 8) as u64);
    assert_eq!(stats.bytes_down, applies * (ND * NT * 8) as u64);

    let times = device.modeled_times().expect("simulated device keeps a clock");
    assert!(times.get(Phase::Fft) > 0.0, "forward FFT time booked");
    assert!(times.get(Phase::Ifft) > 0.0, "inverse FFT time booked");
    assert!(times.get(Phase::Pad) > 0.0, "dssdd boundary cast booked to Pad");
    assert!(times.get(Phase::Comm) > 0.0, "host-link transfer time booked");

    device.reset_transfers();
    assert_eq!(device.transfers().uploads, 0);
    assert_eq!(device.modeled_times().unwrap().total(), 0.0);
}

/// The CPU backend's ledger also counts pipeline-edge crossings (logical
/// accounting only — no copies, no modeled clock).
#[test]
fn cpu_backend_keeps_a_transfer_ledger_but_no_clock() {
    let mv = pipeline(19, "ddddd", BackendKind::Cpu);
    let m = input(NM * NT, 20);
    mv.apply_forward(&m).unwrap();
    let stats = mv.device().transfers();
    assert_eq!(stats.uploads, 1);
    assert_eq!(stats.downloads, 1);
    assert!(mv.device().modeled_times().is_none());
}

/// The multi-level Toeplitz operators thread the same backend selection:
/// simulated stays bit-identical on both the full-embedding and
/// split-FFT paths.
#[test]
fn toeplitz_backends_are_bit_identical_too() {
    let diags_len = (3 + 4 - 1) * (5 + 3 - 1);
    let mut diags = vec![0.0; diags_len];
    SplitMix64::new(23).fill_uniform(&mut diags, -1.0, 1.0);
    diags[(4 - 1) * (5 + 3 - 1) + (3 - 1)] += 4.0;
    let gen = ToeplitzGenerator::two_level((3, 4), (5, 3), diags).unwrap();
    for split in [false, true] {
        for cfg in ["ddddd", "dssdd"] {
            let cpu = TwoLevelToeplitz::builder(gen.clone())
                .precision(cfg.parse().unwrap())
                .split_fft(split)
                .backend(PipelineBackend::Cpu)
                .build()
                .unwrap();
            let sim = TwoLevelToeplitz::builder(gen.clone())
                .precision(cfg.parse().unwrap())
                .split_fft(split)
                .backend(PipelineBackend::Simulated)
                .build()
                .unwrap();
            assert_eq!(sim.backend(), PipelineBackend::Simulated);
            let m = input(cpu.shape().cols, 29);
            assert_eq!(
                cpu.apply_forward(&m).unwrap(),
                sim.apply_forward(&m).unwrap(),
                "[split={split},{cfg}] forward"
            );
            // The pointwise multiply runs through the simulated device,
            // so Sbgemv phase time accumulates.
            assert!(sim.device().modeled_times().unwrap().get(Phase::Sbgemv) > 0.0);
        }
    }
}

/// Unknown and unavailable backend selections are typed build-time
/// errors with a `source()` chain down to the `BackendError`.
#[test]
fn backend_selection_failures_are_typed() {
    // Portability before the factory is installed: typed Unavailable.
    let err = FftMatvec::builder(operator(31)).backend(BackendKind::Portability).build();
    match err {
        Err(ConfigError::Backend(BackendError::Unavailable { backend, .. })) => {
            assert_eq!(backend, "portability");
        }
        other => panic!("expected typed Unavailable, got {other:?}"),
    }

    // After installing the hipify factory the build gets further —
    // sources hipify and validate — but planning an FFT is still typed
    // Unavailable (no GPU runtime here), not a panic.
    let _freshly_installed = fftmatvec::portability::install();
    let err = FftMatvec::builder(operator(31)).backend(BackendKind::Portability).build();
    match err {
        Err(ConfigError::Backend(BackendError::Unavailable { backend, reason })) => {
            assert_eq!(backend, "portability");
            assert!(!reason.is_empty());
        }
        other => panic!("expected typed Unavailable after install, got {other:?}"),
    }

    // The error chain threads source() down to the BackendError.
    let op_err: OpError =
        BackendError::Unavailable { backend: "portability", reason: "x".into() }.into();
    let src = std::error::Error::source(&op_err).expect("OpError::Backend has a source");
    assert!(src.downcast_ref::<BackendError>().is_some());

    // A portability device created directly also refuses primitives with
    // typed errors.
    let device = fftmatvec::backend::create(BackendKind::Portability).unwrap();
    let mut buf = RealBuffer::zeros(Precision::Double, 8);
    assert!(matches!(device.tree_reduce(&mut buf, 4), Err(BackendError::Unavailable { .. })));
}

/// Selection precedence: builder wins over the environment, the
/// environment wins over the default, and an unknown name in the
/// environment is a typed error. Env manipulation stays inside this one
/// test (other tests in this binary always pass an explicit backend).
#[test]
fn selection_precedence_is_builder_env_default() {
    std::env::set_var(BACKEND_ENV, "simulated");
    let from_env = FftMatvec::builder(operator(37)).build().unwrap();
    assert_eq!(from_env.backend(), BackendKind::Simulated, "env override selects simulated");

    let explicit = FftMatvec::builder(operator(37)).backend(BackendKind::Cpu).build().unwrap();
    assert_eq!(explicit.backend(), BackendKind::Cpu, "builder beats env");

    std::env::set_var(BACKEND_ENV, "tpu");
    match FftMatvec::builder(operator(37)).build() {
        Err(ConfigError::Backend(BackendError::UnknownBackend { name })) => {
            assert_eq!(name, "tpu");
        }
        other => panic!("expected typed UnknownBackend, got {other:?}"),
    }

    std::env::remove_var(BACKEND_ENV);
    let default = FftMatvec::builder(operator(37)).build().unwrap();
    assert_eq!(default.backend(), BackendKind::Cpu, "default is the CPU pool");
    assert_eq!(default.backend(), PipelineBackend::default());
}
