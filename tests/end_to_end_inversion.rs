//! End-to-end Bayesian inversion through the whole stack: PDE → p2o →
//! FFTMatvec → Hessian actions → CG MAP — in double and mixed precision,
//! single-rank and distributed.

use fftmatvec::comm::ProcessGrid;
use fftmatvec::core::{DistributedFftMatvec, FftMatvec, PrecisionConfig};
use fftmatvec::lti::{BayesianProblem, HeatEquation1D, P2oMap};
use fftmatvec::numeric::vecmath::rel_l2_error;

fn gaussian_source(nx: usize, nt: usize, center: f64, width: f64, steps: usize) -> Vec<f64> {
    let mut m = vec![0.0; nx * nt];
    for t in 0..steps.min(nt) {
        for i in 0..nx {
            let x = (i as f64 + 1.0) / (nx as f64 + 1.0);
            m[t * nx + i] = (-(x - center) * (x - center) / width).exp();
        }
    }
    m
}

fn make_problem(cfg: PrecisionConfig) -> BayesianProblem {
    let sys = HeatEquation1D::new(24, 0.02, 0.3);
    let p2o = P2oMap::assemble(&sys, &[4, 9, 14, 19], 16).unwrap();
    BayesianProblem::new(FftMatvec::new(p2o.operator, cfg), 1e-3, 5.0)
}

#[test]
fn map_solve_recovers_observable_content() {
    let prob = make_problem(PrecisionConfig::all_double());
    let m_true = gaussian_source(24, 16, 0.5, 0.01, 6);
    let d_obs = prob.synthesize_data(&m_true, 21);
    let sol = prob.solve_map(&d_obs, 1e-9, 500);
    assert!(sol.residual < 1e-9, "CG must converge: {}", sol.residual);

    // The MAP point reproduces the observations far better than the prior
    // mean does.
    let fit = prob.forward(&sol.m_map);
    let misfit = rel_l2_error(&fit, &d_obs);
    assert!(misfit < 0.02, "posterior data fit {misfit}");
}

#[test]
fn mixed_precision_inversion_matches_double_decision() {
    let m_true = gaussian_source(24, 16, 0.4, 0.02, 5);

    let prob_d = make_problem(PrecisionConfig::all_double());
    let d_obs = prob_d.synthesize_data(&m_true, 33);
    let sol_d = prob_d.solve_map(&d_obs, 1e-8, 500);

    let prob_m = make_problem(PrecisionConfig::optimal_forward());
    let sol_m = prob_m.solve_map(&d_obs, 1e-8, 500);

    // Posterior predictions agree to well under the noise level.
    let fit_d = prob_d.forward(&sol_d.m_map);
    let fit_m = prob_d.forward(&sol_m.m_map);
    let diff = rel_l2_error(&fit_m, &fit_d);
    assert!(diff < 1e-3, "posterior predictions diverged: {diff}");
}

#[test]
fn mixed_precision_costs_more_iterations_not_accuracy() {
    // The paper's framing: lower-precision actions may take extra solver
    // iterations, but each is cheaper; the answer quality is set by the
    // tolerance, not the precision.
    let m_true = gaussian_source(24, 16, 0.6, 0.015, 4);
    let prob_d = make_problem(PrecisionConfig::all_double());
    let d_obs = prob_d.synthesize_data(&m_true, 55);
    let sol_d = prob_d.solve_map(&d_obs, 1e-8, 800);

    let prob_m = make_problem(PrecisionConfig::all_single());
    let sol_m = prob_m.solve_map(&d_obs, 1e-8, 800);
    // Same convergence target reached (or iteration cap, which the looser
    // config is allowed to hit) — compare achieved data fits instead of
    // iteration counts.
    let fit_d = rel_l2_error(&prob_d.forward(&sol_d.m_map), &d_obs);
    let fit_m = rel_l2_error(&prob_d.forward(&sol_m.m_map), &d_obs);
    assert!(
        fit_m < 10.0 * fit_d.max(1e-6),
        "all-single inversion lost the solution: {fit_m} vs {fit_d}"
    );
}

#[test]
fn distributed_hessian_matches_single_rank() {
    // Hessian actions assembled from distributed matvecs agree with the
    // single-rank path — the consistency the multi-GPU solver relies on.
    let sys = HeatEquation1D::new(24, 0.02, 0.3);
    let p2o = P2oMap::assemble(&sys, &[4, 9, 14, 19], 16).unwrap();
    let (nd, nm, nt) = (4usize, 24usize, 16usize);
    let col = p2o.operator.first_col().to_vec();

    let single = DistributedFftMatvec::from_global(
        nd,
        nm,
        nt,
        &col,
        ProcessGrid::single(),
        PrecisionConfig::all_double(),
    )
    .unwrap();
    let dist = DistributedFftMatvec::from_global(
        nd,
        nm,
        nt,
        &col,
        ProcessGrid::new(2, 4),
        PrecisionConfig::all_double(),
    )
    .unwrap();

    let v: Vec<f64> = (0..nm * nt).map(|i| ((i * 37 % 101) as f64) / 101.0 - 0.5).collect();
    let h_single = single.apply_adjoint(&single.apply_forward(&v));
    let h_dist = dist.apply_adjoint(&dist.apply_forward(&v));
    assert!(rel_l2_error(&h_dist, &h_single) < 1e-12);
}
