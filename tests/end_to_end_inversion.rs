//! End-to-end Bayesian inversion through the whole stack: PDE → p2o →
//! FFTMatvec → Hessian actions → CG MAP — in double and mixed precision,
//! single-rank and distributed — plus the four-tier error-ordering check:
//! measured matvec error is monotone in the Eq. 6 predicted bound across
//! the precision lattice.

use fftmatvec::comm::ProcessGrid;
use fftmatvec::core::error_analysis::{error_bound, BoundParams};
use fftmatvec::core::{
    BlockToeplitzOperator, DistributedFftMatvec, FftMatvec, LinearOperator, PrecisionConfig,
};
use fftmatvec::lti::{BayesianProblem, HeatEquation1D, P2oMap};
use fftmatvec::numeric::vecmath::rel_l2_error;
use fftmatvec::numeric::SplitMix64;

fn gaussian_source(nx: usize, nt: usize, center: f64, width: f64, steps: usize) -> Vec<f64> {
    let mut m = vec![0.0; nx * nt];
    for t in 0..steps.min(nt) {
        for i in 0..nx {
            let x = (i as f64 + 1.0) / (nx as f64 + 1.0);
            m[t * nx + i] = (-(x - center) * (x - center) / width).exp();
        }
    }
    m
}

fn make_problem(cfg: PrecisionConfig) -> BayesianProblem {
    let sys = HeatEquation1D::new(24, 0.02, 0.3);
    let p2o = P2oMap::assemble(&sys, &[4, 9, 14, 19], 16).unwrap();
    BayesianProblem::new(
        FftMatvec::builder(p2o.operator).precision(cfg).build().unwrap(),
        1e-3,
        5.0,
    )
}

#[test]
fn map_solve_recovers_observable_content() {
    let prob = make_problem(PrecisionConfig::all_double());
    let m_true = gaussian_source(24, 16, 0.5, 0.01, 6);
    let d_obs = prob.synthesize_data(&m_true, 21).unwrap();
    let sol = prob.solve_map(&d_obs, 1e-9, 500).unwrap();
    assert!(sol.residual < 1e-9, "CG must converge: {}", sol.residual);

    // The MAP point reproduces the observations far better than the prior
    // mean does.
    let fit = prob.forward(&sol.m_map).unwrap();
    let misfit = rel_l2_error(&fit, &d_obs);
    assert!(misfit < 0.02, "posterior data fit {misfit}");
}

#[test]
fn mixed_precision_inversion_matches_double_decision() {
    let m_true = gaussian_source(24, 16, 0.4, 0.02, 5);

    let prob_d = make_problem(PrecisionConfig::all_double());
    let d_obs = prob_d.synthesize_data(&m_true, 33).unwrap();
    let sol_d = prob_d.solve_map(&d_obs, 1e-8, 500).unwrap();

    let prob_m = make_problem(PrecisionConfig::optimal_forward());
    let sol_m = prob_m.solve_map(&d_obs, 1e-8, 500).unwrap();

    // Posterior predictions agree to well under the noise level.
    let fit_d = prob_d.forward(&sol_d.m_map).unwrap();
    let fit_m = prob_d.forward(&sol_m.m_map).unwrap();
    let diff = rel_l2_error(&fit_m, &fit_d);
    assert!(diff < 1e-3, "posterior predictions diverged: {diff}");
}

#[test]
fn mixed_precision_costs_more_iterations_not_accuracy() {
    // The paper's framing: lower-precision actions may take extra solver
    // iterations, but each is cheaper; the answer quality is set by the
    // tolerance, not the precision.
    let m_true = gaussian_source(24, 16, 0.6, 0.015, 4);
    let prob_d = make_problem(PrecisionConfig::all_double());
    let d_obs = prob_d.synthesize_data(&m_true, 55).unwrap();
    let sol_d = prob_d.solve_map(&d_obs, 1e-8, 800).unwrap();

    let prob_m = make_problem(PrecisionConfig::all_single());
    let sol_m = prob_m.solve_map(&d_obs, 1e-8, 800).unwrap();
    // Same convergence target reached (or iteration cap, which the looser
    // config is allowed to hit) — compare achieved data fits instead of
    // iteration counts.
    let fit_d = rel_l2_error(&prob_d.forward(&sol_d.m_map).unwrap(), &d_obs);
    let fit_m = rel_l2_error(&prob_d.forward(&sol_m.m_map).unwrap(), &d_obs);
    assert!(
        fit_m < 10.0 * fit_d.max(1e-6),
        "all-single inversion lost the solution: {fit_m} vs {fit_d}"
    );
}

/// Satellite check (ISSUE 3): across the anchor configurations of the
/// four-tier lattice — `hhhhh`, `bbbbb`, `sssss`, `ddddd` — and the
/// paper's mixed optima `dssdd`/`ddssd`, the *measured* forward-matvec
/// error against the all-double reference must be monotone in the Eq. 6
/// *predicted* bound, on at least two problem sizes.
///
/// Predicted-bound order (per-phase ε, Section 3.2.1 extended):
/// `ddddd < dssdd ≈ ddssd < sssss ≪ hhhhh < bbbbb` — note f16 is the
/// *more accurate* 16-bit tier (ε = 2⁻¹⁰ vs bf16's 2⁻⁷). Monotonicity is
/// only asserted between pairs whose bounds differ by ≥ 4× — roundoff is
/// stochastic, so near-tied bounds (e.g. `dssdd` vs `ddssd`) may order
/// either way in a single measurement.
#[test]
fn eq6_bound_orders_measured_error_across_tiers() {
    // Shapes stay inside the f16 dynamic range: the phase-3 accumulation
    // peaks around nm·(nt/2)²·E[F]·E[m] ≪ 65504 for both sizes.
    for (nd, nm, nt, seed) in [(4usize, 48usize, 16usize, 11u64), (4, 64, 32, 13)] {
        let mut rng = SplitMix64::new(seed);
        let mut col = vec![0.0; nt * nd * nm];
        rng.fill_uniform(&mut col, 0.0, 1.0);
        let op = BlockToeplitzOperator::from_first_block_column(nd, nm, nt, &col).unwrap();
        let mut m = vec![0.0; nm * nt];
        rng.fill_uniform_stuffed(&mut m, 0.0, 1.0);

        let mut mv = FftMatvec::builder(op).build().unwrap();
        let baseline = mv.apply_forward(&m).unwrap();
        let params = BoundParams { nt, n_local: nm, reduce_ranks: 1, kappa: 1.0 };

        let mut points: Vec<(String, f64, f64)> =
            ["ddddd", "dssdd", "ddssd", "sssss", "hhhhh", "bbbbb"]
                .iter()
                .map(|s| {
                    let cfg: PrecisionConfig = s.parse().unwrap();
                    mv.set_config(cfg);
                    let out = mv.apply_forward(&m).unwrap();
                    assert!(
                        out.iter().all(|v| v.is_finite()),
                        "({nd},{nm},{nt}) {s}: non-finite output"
                    );
                    (s.to_string(), error_bound(cfg, &params).total, rel_l2_error(&out, &baseline))
                })
                .collect();
        points.sort_by(|a, b| a.1.total_cmp(&b.1));

        // Sanity on the predicted order itself.
        let order: Vec<&str> = points.iter().map(|p| p.0.as_str()).collect();
        assert_eq!(order[0], "ddddd");
        assert_eq!(&order[3..], ["sssss", "hhhhh", "bbbbb"], "({nd},{nm},{nt})");

        // Measured error is monotone in the bound for every pair with a
        // ≥ 4× bound separation.
        for i in 0..points.len() {
            for j in i + 1..points.len() {
                let (na, ba, ea) = (&points[i].0, points[i].1, points[i].2);
                let (nb, bb, eb) = (&points[j].0, points[j].1, points[j].2);
                if bb >= 4.0 * ba {
                    assert!(
                        ea <= eb,
                        "({nd},{nm},{nt}): {na} (bound {ba:.2e}, err {ea:.2e}) must not \
                         out-err {nb} (bound {bb:.2e}, err {eb:.2e})"
                    );
                }
            }
        }

        // The chain the issue names, explicitly: hhhhh ≤ bbbbb measured,
        // and both are worse than every FP32-tier configuration.
        let err_of = |name: &str| points.iter().find(|p| p.0 == name).unwrap().2;
        assert!(err_of("hhhhh") <= err_of("bbbbb"), "({nd},{nm},{nt})");
        assert!(err_of("sssss") <= err_of("hhhhh"), "({nd},{nm},{nt})");
        assert!(err_of("dssdd") <= err_of("hhhhh"), "({nd},{nm},{nt})");
        assert!(err_of("ddssd") <= err_of("hhhhh"), "({nd},{nm},{nt})");
    }
}

#[test]
fn distributed_hessian_matches_single_rank() {
    // Hessian actions assembled from distributed matvecs agree with the
    // single-rank path — the consistency the multi-GPU solver relies on.
    let sys = HeatEquation1D::new(24, 0.02, 0.3);
    let p2o = P2oMap::assemble(&sys, &[4, 9, 14, 19], 16).unwrap();
    let (nd, nm, nt) = (4usize, 24usize, 16usize);
    let col = p2o.operator.first_col().to_vec();

    let single = DistributedFftMatvec::from_global(
        nd,
        nm,
        nt,
        &col,
        ProcessGrid::single(),
        PrecisionConfig::all_double(),
    )
    .unwrap();
    let dist = DistributedFftMatvec::from_global(
        nd,
        nm,
        nt,
        &col,
        ProcessGrid::new(2, 4),
        PrecisionConfig::all_double(),
    )
    .unwrap();

    let v: Vec<f64> = (0..nm * nt).map(|i| ((i * 37 % 101) as f64) / 101.0 - 0.5).collect();
    let h_single = single.apply_adjoint(&single.apply_forward(&v).unwrap()).unwrap();
    let h_dist = dist.apply_adjoint(&dist.apply_forward(&v).unwrap()).unwrap();
    assert!(rel_l2_error(&h_dist, &h_single) < 1e-12);
}
