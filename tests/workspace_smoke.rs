//! Workspace smoke test: one tiny end-to-end matvec per precision
//! configuration, checked against the direct (non-FFT) reference and the
//! paper's first-order error bound (Eq. 6).
//!
//! This is the fastest whole-stack sanity check in the tree: if the crate
//! DAG wires up, the pipeline runs, and the mixed-precision error model
//! orders configurations the way Section 3.2.1 predicts, this passes in
//! milliseconds.

use fftmatvec::core::error_analysis::{condition_estimate, error_bound, BoundParams};
use fftmatvec::core::{
    BlockToeplitzOperator, DirectMatvec, FftMatvec, LinearOperator, PrecisionConfig,
};
use fftmatvec::numeric::vecmath::rel_l2_error;
use fftmatvec::numeric::SplitMix64;

const ND: usize = 3;
const NM: usize = 24;
const NT: usize = 12;

/// Paper-style workload: positive uniform operator entries and a
/// mantissa-stuffed input vector, so every single-precision phase
/// provably loses bits (Section 4.2.1).
fn make_operator() -> BlockToeplitzOperator {
    let mut rng = SplitMix64::new(0xBEEF);
    let mut col = vec![0.0; NT * ND * NM];
    rng.fill_uniform(&mut col, 0.0, 1.0);
    BlockToeplitzOperator::from_first_block_column(ND, NM, NT, &col).unwrap()
}

fn stuffed_input() -> Vec<f64> {
    let mut rng = SplitMix64::new(0xF00D);
    let mut m = vec![0.0; NM * NT];
    rng.fill_uniform_stuffed(&mut m, 0.0, 1.0);
    m
}

fn forward_error(cfg: PrecisionConfig, reference: &[f64], m: &[f64]) -> f64 {
    let mv = FftMatvec::builder(make_operator()).precision(cfg).build().unwrap();
    let d = mv.apply_forward(m).unwrap();
    assert_eq!(d.len(), ND * NT, "forward output length for {cfg:?}");
    assert!(d.iter().all(|v| v.is_finite()), "non-finite output for {cfg:?}");
    rel_l2_error(&d, reference)
}

#[test]
fn matvec_per_precision_config_and_eq6_ordering() {
    let op = make_operator();
    let m = stuffed_input();
    let reference = DirectMatvec::new(&op).apply_forward(&m).unwrap();

    let all_double = PrecisionConfig::all_double();
    let all_single = PrecisionConfig::all_single();
    let mixed = PrecisionConfig::optimal_forward(); // dssdd

    let err_double = forward_error(all_double, &reference, &m);
    let err_single = forward_error(all_single, &reference, &m);
    let err_mixed = forward_error(mixed, &reference, &m);

    // Observed ordering from Eq. 6: double ≪ {mixed, single}, and the
    // mixed optimum must not be meaningfully worse than all-single (both
    // are dominated by the single-precision SBGEMV term ε₃·n_m).
    assert!(
        err_double < err_mixed,
        "all-double ({err_double:.3e}) should beat mixed ({err_mixed:.3e})"
    );
    assert!(
        err_double * 100.0 < err_single,
        "single ({err_single:.3e}) must lose ≫ bits vs double ({err_double:.3e})"
    );
    assert!(
        err_mixed <= err_single * 4.0,
        "mixed ({err_mixed:.3e}) should track all-single ({err_single:.3e})"
    );

    // Eq. 6 evaluated per configuration: the bound itself must order the
    // configurations, and every observed error must sit below its bound.
    let params =
        BoundParams { nt: NT, n_local: NM, reduce_ranks: 1, kappa: condition_estimate(&op, 1) };
    let bound_double = error_bound(all_double, &params).total;
    let bound_single = error_bound(all_single, &params).total;
    let bound_mixed = error_bound(mixed, &params).total;

    assert!(
        bound_double < bound_mixed && bound_mixed < bound_single,
        "Eq. 6 must order the bounds: {bound_double:.3e} < {bound_mixed:.3e} < {bound_single:.3e}"
    );
    for (name, err, bound) in [
        ("all_double", err_double, bound_double),
        ("all_single", err_single, bound_single),
        ("mixed dssdd", err_mixed, bound_mixed),
    ] {
        assert!(err <= bound, "{name}: observed {err:.3e} exceeds Eq. 6 bound {bound:.3e}");
    }
}

#[test]
fn adjoint_runs_in_every_precision_family() {
    let d = stuffed_input()[..ND * NT].to_vec();

    for cfg in [
        PrecisionConfig::all_double(),
        PrecisionConfig::all_single(),
        PrecisionConfig::optimal_adjoint(), // ddssd
        PrecisionConfig::all_half(),
        PrecisionConfig::all_bf16(),
        "hbsdd".parse().unwrap(),
    ] {
        let mv = FftMatvec::builder(make_operator()).precision(cfg).build().unwrap();
        let out = mv.apply_adjoint(&d).unwrap();
        assert_eq!(out.len(), NM * NT, "adjoint output length for {cfg:?}");
        assert!(out.iter().all(|v| v.is_finite()), "non-finite adjoint for {cfg:?}");
    }
}

/// Acceptance check (ISSUE 3): `FftMatvec` executes *every* phase-wise
/// tier combination of the 4⁵ lattice on a smoke-size problem, with
/// finite output and error no worse than the all-bf16 roundoff regime.
#[test]
fn every_tier_combination_executes() {
    let op = make_operator();
    let m = stuffed_input();
    let mut mv = FftMatvec::builder(op).build().unwrap();
    let reference = mv.apply_forward(&m).unwrap();

    let configs = PrecisionConfig::all_configs_full();
    assert_eq!(configs.len(), 1024);
    let mut worst = (0.0f64, String::new());
    for cfg in configs {
        mv.set_config(cfg);
        let d = mv.apply_forward(&m).unwrap();
        assert_eq!(d.len(), ND * NT, "output length for {cfg}");
        assert!(d.iter().all(|v| v.is_finite()), "non-finite output for {cfg}");
        let err = rel_l2_error(&d, &reference);
        assert!(err < 0.2, "{cfg}: error {err:.3e} out of the roundoff regime");
        if err > worst.0 {
            worst = (err, cfg.to_string());
        }
    }
    // The worst configuration over the lattice must involve a 16-bit
    // phase — the FP32 regime cannot produce the largest error.
    assert!(
        worst.1.contains('b') || worst.1.contains('h'),
        "worst config {} (err {:.3e}) should be a 16-bit one",
        worst.1,
        worst.0
    );
}
