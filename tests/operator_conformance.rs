//! Shared `LinearOperator` conformance suite, run against every
//! realization — the FFT pipeline, the direct `O(N_t²)` oracle, the
//! distributed matvec, and the multi-level Toeplitz operators
//! (`NdCirculantEmbedding`, `TwoLevelToeplitz` on both the full-embedding
//! and the split-FFT path). One contract:
//!
//! * `shape()` matches the operator's `(N_d·N_t, N_m·N_t)`;
//! * the adjoint identity `⟨F·m, d⟩ == ⟨m, F*·d⟩` holds;
//! * the allocating and `_into` apply paths are bit-identical;
//! * the flat strided batch path equals per-item applies;
//! * mismatched lengths come back as typed `OpError`s, never panics;
//! * repeated `apply_*_into` performs **zero heap allocations** after
//!   warm-up, verified by a counting global allocator.
//!
//! The allocation counter is thread-local so concurrently running tests
//! in the same binary cannot perturb each other's counts.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use fftmatvec::comm::ProcessGrid;
use fftmatvec::core::{
    BlockToeplitzOperator, DirectMatvec, DistributedFftMatvec, FftMatvec, LinearOperator,
    OpDirection, OpError, OpShape, PrecisionConfig,
};
use fftmatvec::numeric::SplitMix64;
use fftmatvec::toeplitz::{NdCirculantEmbedding, ToeplitzGenerator, TwoLevelToeplitz};

/// Counts allocations made by the current thread.
struct CountingAllocator;

thread_local! {
    static ALLOCATIONS: Cell<usize> = const { Cell::new(0) };
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn thread_allocations() -> usize {
    ALLOCATIONS.with(Cell::get)
}

const ND: usize = 3;
const NM: usize = 12;
const NT: usize = 8;

fn operator(seed: u64) -> BlockToeplitzOperator {
    let mut rng = SplitMix64::new(seed);
    let mut col = vec![0.0; NT * ND * NM];
    rng.fill_uniform(&mut col, -1.0, 1.0);
    BlockToeplitzOperator::from_first_block_column(ND, NM, NT, &col).unwrap()
}

/// Input/output-sized random vectors for whatever shape `op` exposes —
/// the suite is realization- and shape-generic.
fn vectors(op: &dyn LinearOperator, seed: u64) -> (Vec<f64>, Vec<f64>) {
    let shape = op.shape();
    let mut rng = SplitMix64::new(seed);
    let mut m = vec![0.0; shape.cols];
    let mut d = vec![0.0; shape.rows];
    rng.fill_uniform(&mut m, -1.0, 1.0);
    rng.fill_uniform(&mut d, -1.0, 1.0);
    (m, d)
}

/// The shared suite body. Into-vs-alloc comparisons are exact (every
/// realization must match its own allocating path bitwise); only the
/// adjoint identity carries a roundoff budget, sized for the distributed
/// reduction's reassociation.
fn conformance(op: &dyn LinearOperator, expected: OpShape, name: &str) {
    let (m, d) = vectors(op, 42);
    let (rows, cols) = (expected.rows, expected.cols);

    // Shape.
    assert_eq!(op.shape(), expected, "{name}: shape");

    // Adjoint identity.
    let fm = op.apply_forward(&m).unwrap();
    let fsd = op.apply_adjoint(&d).unwrap();
    let lhs: f64 = fm.iter().zip(&d).map(|(a, b)| a * b).sum();
    let rhs: f64 = m.iter().zip(&fsd).map(|(a, b)| a * b).sum();
    assert!(
        (lhs - rhs).abs() <= 1e-11 * lhs.abs().max(rhs.abs()).max(1.0),
        "{name}: adjoint identity {lhs} vs {rhs}"
    );

    // apply vs apply_into bit-equality (both directions).
    let mut out = vec![f64::NAN; rows];
    op.apply_forward_into(&m, &mut out).unwrap();
    assert_eq!(out, fm, "{name}: forward into != alloc");
    let mut back = vec![f64::NAN; cols];
    op.apply_adjoint_into(&d, &mut back).unwrap();
    assert_eq!(back, fsd, "{name}: adjoint into != alloc");

    // Flat strided batch equals per-item applies.
    let batch = 4;
    let mut inputs = vec![0.0; batch * cols];
    SplitMix64::new(7).fill_uniform(&mut inputs, -1.0, 1.0);
    let mut outputs = vec![0.0; batch * rows];
    op.apply_forward_many_into(&inputs, &mut outputs).unwrap();
    for b in 0..batch {
        let single = op.apply_forward(&inputs[b * cols..(b + 1) * cols]).unwrap();
        assert_eq!(&outputs[b * rows..(b + 1) * rows], &single[..], "{name}: batch b={b}");
    }

    // Typed errors, not panics.
    assert!(
        matches!(op.apply_forward(&m[1..]), Err(OpError::InputLength { .. })),
        "{name}: short forward input"
    );
    let mut short = vec![0.0; 3];
    assert!(
        matches!(op.apply_forward_into(&m, &mut short), Err(OpError::OutputLength { .. })),
        "{name}: short forward output"
    );
    assert!(
        matches!(op.apply_adjoint(&d[1..]), Err(OpError::InputLength { .. })),
        "{name}: short adjoint input"
    );
    let mut ragged_out = vec![0.0; rows];
    assert!(
        matches!(
            op.apply_many_into(OpDirection::Forward, &inputs[1..], &mut ragged_out),
            Err(OpError::RaggedBatch { .. })
        ),
        "{name}: ragged batch"
    );
    assert!(
        matches!(
            op.apply_many_into(OpDirection::Forward, &inputs, &mut ragged_out),
            Err(OpError::BatchMismatch { .. })
        ),
        "{name}: batch output mismatch"
    );
}

/// Assert `op` allocates nothing across repeated `_into` applies once
/// warmed up.
fn assert_zero_alloc(op: &dyn LinearOperator, name: &str) {
    let (m, d) = vectors(op, 13);
    let shape = op.shape();
    let mut fwd = vec![0.0; shape.rows];
    let mut adj = vec![0.0; shape.cols];
    // Warm-up: fills workspace pools, scratch arenas, and any lazily
    // materialized precision casts of F̂.
    for _ in 0..3 {
        op.apply_forward_into(&m, &mut fwd).unwrap();
        op.apply_adjoint_into(&d, &mut adj).unwrap();
    }
    let before = thread_allocations();
    for _ in 0..10 {
        op.apply_forward_into(&m, &mut fwd).unwrap();
        op.apply_adjoint_into(&d, &mut adj).unwrap();
    }
    let after = thread_allocations();
    assert_eq!(
        after - before,
        0,
        "{name}: {} heap allocations across 20 warmed-up apply_into calls",
        after - before
    );
}

#[test]
fn fft_matvec_conforms() {
    let mv = FftMatvec::builder(operator(1)).build().unwrap();
    conformance(&mv, OpShape::new(ND * NT, NM * NT), "FftMatvec[ddddd]");
    assert_zero_alloc(&mv, "FftMatvec[ddddd]");
}

#[test]
fn fft_matvec_conforms_mixed_precision() {
    // The paper optimum exercises the f32 engine, the fused casts, and
    // the lazily materialized single-precision F̂ copy.
    let mv = FftMatvec::builder(operator(2))
        .precision(PrecisionConfig::optimal_forward())
        .build()
        .unwrap();
    // Mixed precision changes values, so only shape/error/no-alloc
    // conformance applies — the adjoint identity tolerance would need the
    // FP32 budget. Run the double-precision suite pieces that transfer:
    assert_eq!(mv.shape(), OpShape::new(ND * NT, NM * NT));
    let (m, _) = vectors(&mv, 3);
    let alloc = mv.apply_forward(&m).unwrap();
    let mut into = vec![0.0; ND * NT];
    mv.apply_forward_into(&m, &mut into).unwrap();
    assert_eq!(alloc, into, "mixed-precision into path must stay bit-identical");
    assert_zero_alloc(&mv, "FftMatvec[dssdd]");
}

#[test]
fn direct_matvec_conforms() {
    let op = operator(4);
    let dm = DirectMatvec::new(&op);
    conformance(&dm, OpShape::new(ND * NT, NM * NT), "DirectMatvec");
    assert_zero_alloc(&dm, "DirectMatvec");
}

#[test]
fn distributed_matvec_conforms() {
    let op = operator(5);
    let dist = DistributedFftMatvec::from_global(
        ND,
        NM,
        NT,
        op.first_col(),
        ProcessGrid::new(2, 3),
        PrecisionConfig::all_double(),
    )
    .unwrap();
    conformance(&dist, OpShape::new(ND * NT, NM * NT), "DistributedFftMatvec[2x3]");
    assert_zero_alloc(&dist, "DistributedFftMatvec[2x3]");
}

/// Two-level generator with a lifted main diagonal, so the adjoint
/// identity's relative tolerance is meaningful.
fn toeplitz_gen(outer: (usize, usize), inner: (usize, usize), seed: u64) -> ToeplitzGenerator {
    let diags_len = (outer.0 + outer.1 - 1) * (inner.0 + inner.1 - 1);
    let mut diags = vec![0.0; diags_len];
    SplitMix64::new(seed).fill_uniform(&mut diags, -1.0, 1.0);
    diags[(outer.1 - 1) * (inner.0 + inner.1 - 1) + (inner.1 - 1)] += 4.0;
    ToeplitzGenerator::two_level(outer, inner, diags).unwrap()
}

#[test]
fn nd_circulant_embedding_conforms() {
    // Three levels with rectangular extents — the general N-d case.
    let mut diags = vec![0.0; 4 * 6 * 5];
    SplitMix64::new(17).fill_uniform(&mut diags, -1.0, 1.0);
    let gen = ToeplitzGenerator::new(&[(2, 3), (4, 3), (3, 3)], diags).unwrap();
    let op = NdCirculantEmbedding::builder(gen).build().unwrap();
    conformance(&op, OpShape::new(2 * 4 * 3, 3 * 3 * 3), "NdCirculantEmbedding[ddddd]");
    assert_zero_alloc(&op, "NdCirculantEmbedding[ddddd]");
}

#[test]
fn two_level_toeplitz_conforms() {
    let op = TwoLevelToeplitz::builder(toeplitz_gen((3, 4), (5, 3), 23)).build().unwrap();
    conformance(&op, OpShape::new(3 * 5, 4 * 3), "TwoLevelToeplitz[full,ddddd]");
    assert_zero_alloc(&op, "TwoLevelToeplitz[full,ddddd]");
}

#[test]
fn two_level_toeplitz_split_conforms() {
    // Odd, non-square extents on the split-FFT path.
    let op = TwoLevelToeplitz::builder(toeplitz_gen((5, 3), (3, 7), 29))
        .split_fft(true)
        .build()
        .unwrap();
    assert!(op.is_split());
    conformance(&op, OpShape::new(5 * 3, 3 * 7), "TwoLevelToeplitz[split,ddddd]");
    assert_zero_alloc(&op, "TwoLevelToeplitz[split,ddddd]");
}

#[test]
fn toeplitz_conforms_mixed_precision() {
    // Mixed tiers change values, so (as for the FFT pipeline above) only
    // the value-independent suite pieces transfer: into-vs-alloc bit
    // equality and the zero-allocation contract, on both paths.
    let gen = toeplitz_gen((4, 4), (6, 5), 31);
    for (split, name) in
        [(false, "TwoLevelToeplitz[full,dssdd]"), (true, "TwoLevelToeplitz[split,dssdd]")]
    {
        let op = TwoLevelToeplitz::builder(gen.clone())
            .precision("dssdd".parse().unwrap())
            .split_fft(split)
            .build()
            .unwrap();
        let (m, d) = vectors(&op, 37);
        let fwd = op.apply_forward(&m).unwrap();
        let mut fwd_into = vec![f64::NAN; op.shape().rows];
        op.apply_forward_into(&m, &mut fwd_into).unwrap();
        assert_eq!(fwd, fwd_into, "{name}: forward into != alloc");
        let adj = op.apply_adjoint(&d).unwrap();
        let mut adj_into = vec![f64::NAN; op.shape().cols];
        op.apply_adjoint_into(&d, &mut adj_into).unwrap();
        assert_eq!(adj, adj_into, "{name}: adjoint into != alloc");
        assert_zero_alloc(&op, name);
    }
}

#[test]
fn trait_objects_interchange() {
    // The point of the redesign: one call site, three realizations.
    let op = operator(6);
    let fft = FftMatvec::builder(operator(6)).build().unwrap();
    let direct = DirectMatvec::new(&op);
    let dist = DistributedFftMatvec::from_global(
        ND,
        NM,
        NT,
        op.first_col(),
        ProcessGrid::new(1, 2),
        PrecisionConfig::all_double(),
    )
    .unwrap();
    let (m, _) = vectors(&fft, 9);
    let realizations: [&dyn LinearOperator; 3] = [&fft, &direct, &dist];
    let outputs: Vec<Vec<f64>> =
        realizations.iter().map(|r| r.apply_forward(&m).unwrap()).collect();
    for pair in outputs.windows(2) {
        let err: f64 =
            pair[0].iter().zip(&pair[1]).map(|(a, b)| (a - b) * (a - b)).sum::<f64>().sqrt();
        assert!(err < 1e-11, "realizations disagree: {err}");
    }
}
