//! Shared `LinearOperator` conformance suite, run against all three
//! realizations — the FFT pipeline, the direct `O(N_t²)` oracle, and the
//! distributed matvec. One problem, one contract:
//!
//! * `shape()` matches the operator's `(N_d·N_t, N_m·N_t)`;
//! * the adjoint identity `⟨F·m, d⟩ == ⟨m, F*·d⟩` holds;
//! * the allocating and `_into` apply paths are bit-identical;
//! * the flat strided batch path equals per-item applies;
//! * mismatched lengths come back as typed `OpError`s, never panics;
//! * repeated `apply_*_into` performs **zero heap allocations** after
//!   warm-up, verified by a counting global allocator.
//!
//! The allocation counter is thread-local so concurrently running tests
//! in the same binary cannot perturb each other's counts.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use fftmatvec::comm::ProcessGrid;
use fftmatvec::core::{
    BlockToeplitzOperator, DirectMatvec, DistributedFftMatvec, FftMatvec, LinearOperator,
    OpDirection, OpError, OpShape, PrecisionConfig,
};
use fftmatvec::numeric::SplitMix64;

/// Counts allocations made by the current thread.
struct CountingAllocator;

thread_local! {
    static ALLOCATIONS: Cell<usize> = const { Cell::new(0) };
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn thread_allocations() -> usize {
    ALLOCATIONS.with(Cell::get)
}

const ND: usize = 3;
const NM: usize = 12;
const NT: usize = 8;

fn operator(seed: u64) -> BlockToeplitzOperator {
    let mut rng = SplitMix64::new(seed);
    let mut col = vec![0.0; NT * ND * NM];
    rng.fill_uniform(&mut col, -1.0, 1.0);
    BlockToeplitzOperator::from_first_block_column(ND, NM, NT, &col).unwrap()
}

fn vectors(seed: u64) -> (Vec<f64>, Vec<f64>) {
    let mut rng = SplitMix64::new(seed);
    let mut m = vec![0.0; NM * NT];
    let mut d = vec![0.0; ND * NT];
    rng.fill_uniform(&mut m, -1.0, 1.0);
    rng.fill_uniform(&mut d, -1.0, 1.0);
    (m, d)
}

/// The shared suite body. Into-vs-alloc comparisons are exact (every
/// realization must match its own allocating path bitwise); only the
/// adjoint identity carries a roundoff budget, sized for the distributed
/// reduction's reassociation.
fn conformance(op: &dyn LinearOperator, name: &str) {
    let (m, d) = vectors(42);

    // Shape.
    assert_eq!(op.shape(), OpShape::new(ND * NT, NM * NT), "{name}: shape");

    // Adjoint identity.
    let fm = op.apply_forward(&m).unwrap();
    let fsd = op.apply_adjoint(&d).unwrap();
    let lhs: f64 = fm.iter().zip(&d).map(|(a, b)| a * b).sum();
    let rhs: f64 = m.iter().zip(&fsd).map(|(a, b)| a * b).sum();
    assert!(
        (lhs - rhs).abs() <= 1e-11 * lhs.abs().max(rhs.abs()).max(1.0),
        "{name}: adjoint identity {lhs} vs {rhs}"
    );

    // apply vs apply_into bit-equality (both directions).
    let mut out = vec![f64::NAN; ND * NT];
    op.apply_forward_into(&m, &mut out).unwrap();
    assert_eq!(out, fm, "{name}: forward into != alloc");
    let mut back = vec![f64::NAN; NM * NT];
    op.apply_adjoint_into(&d, &mut back).unwrap();
    assert_eq!(back, fsd, "{name}: adjoint into != alloc");

    // Flat strided batch equals per-item applies.
    let batch = 4;
    let mut inputs = vec![0.0; batch * NM * NT];
    SplitMix64::new(7).fill_uniform(&mut inputs, -1.0, 1.0);
    let mut outputs = vec![0.0; batch * ND * NT];
    op.apply_forward_many_into(&inputs, &mut outputs).unwrap();
    for b in 0..batch {
        let single = op.apply_forward(&inputs[b * NM * NT..(b + 1) * NM * NT]).unwrap();
        assert_eq!(&outputs[b * ND * NT..(b + 1) * ND * NT], &single[..], "{name}: batch b={b}");
    }

    // Typed errors, not panics.
    assert!(
        matches!(op.apply_forward(&m[1..]), Err(OpError::InputLength { .. })),
        "{name}: short forward input"
    );
    let mut short = vec![0.0; 3];
    assert!(
        matches!(op.apply_forward_into(&m, &mut short), Err(OpError::OutputLength { .. })),
        "{name}: short forward output"
    );
    assert!(
        matches!(op.apply_adjoint(&d[1..]), Err(OpError::InputLength { .. })),
        "{name}: short adjoint input"
    );
    let mut ragged_out = vec![0.0; ND * NT];
    assert!(
        matches!(
            op.apply_many_into(OpDirection::Forward, &inputs[1..], &mut ragged_out),
            Err(OpError::RaggedBatch { .. })
        ),
        "{name}: ragged batch"
    );
    assert!(
        matches!(
            op.apply_many_into(OpDirection::Forward, &inputs, &mut ragged_out),
            Err(OpError::BatchMismatch { .. })
        ),
        "{name}: batch output mismatch"
    );
}

/// Assert `op` allocates nothing across repeated `_into` applies once
/// warmed up.
fn assert_zero_alloc(op: &dyn LinearOperator, name: &str) {
    let (m, d) = vectors(13);
    let mut fwd = vec![0.0; ND * NT];
    let mut adj = vec![0.0; NM * NT];
    // Warm-up: fills workspace pools, scratch arenas, and any lazily
    // materialized precision casts of F̂.
    for _ in 0..3 {
        op.apply_forward_into(&m, &mut fwd).unwrap();
        op.apply_adjoint_into(&d, &mut adj).unwrap();
    }
    let before = thread_allocations();
    for _ in 0..10 {
        op.apply_forward_into(&m, &mut fwd).unwrap();
        op.apply_adjoint_into(&d, &mut adj).unwrap();
    }
    let after = thread_allocations();
    assert_eq!(
        after - before,
        0,
        "{name}: {} heap allocations across 20 warmed-up apply_into calls",
        after - before
    );
}

#[test]
fn fft_matvec_conforms() {
    let mv = FftMatvec::builder(operator(1)).build().unwrap();
    conformance(&mv, "FftMatvec[ddddd]");
    assert_zero_alloc(&mv, "FftMatvec[ddddd]");
}

#[test]
fn fft_matvec_conforms_mixed_precision() {
    // The paper optimum exercises the f32 engine, the fused casts, and
    // the lazily materialized single-precision F̂ copy.
    let mv = FftMatvec::builder(operator(2))
        .precision(PrecisionConfig::optimal_forward())
        .build()
        .unwrap();
    // Mixed precision changes values, so only shape/error/no-alloc
    // conformance applies — the adjoint identity tolerance would need the
    // FP32 budget. Run the double-precision suite pieces that transfer:
    assert_eq!(mv.shape(), OpShape::new(ND * NT, NM * NT));
    let (m, _) = vectors(3);
    let alloc = mv.apply_forward(&m).unwrap();
    let mut into = vec![0.0; ND * NT];
    mv.apply_forward_into(&m, &mut into).unwrap();
    assert_eq!(alloc, into, "mixed-precision into path must stay bit-identical");
    assert_zero_alloc(&mv, "FftMatvec[dssdd]");
}

#[test]
fn direct_matvec_conforms() {
    let op = operator(4);
    let dm = DirectMatvec::new(&op);
    conformance(&dm, "DirectMatvec");
    assert_zero_alloc(&dm, "DirectMatvec");
}

#[test]
fn distributed_matvec_conforms() {
    let op = operator(5);
    let dist = DistributedFftMatvec::from_global(
        ND,
        NM,
        NT,
        op.first_col(),
        ProcessGrid::new(2, 3),
        PrecisionConfig::all_double(),
    )
    .unwrap();
    conformance(&dist, "DistributedFftMatvec[2x3]");
    assert_zero_alloc(&dist, "DistributedFftMatvec[2x3]");
}

#[test]
fn trait_objects_interchange() {
    // The point of the redesign: one call site, three realizations.
    let op = operator(6);
    let fft = FftMatvec::builder(operator(6)).build().unwrap();
    let direct = DirectMatvec::new(&op);
    let dist = DistributedFftMatvec::from_global(
        ND,
        NM,
        NT,
        op.first_col(),
        ProcessGrid::new(1, 2),
        PrecisionConfig::all_double(),
    )
    .unwrap();
    let (m, _) = vectors(9);
    let realizations: [&dyn LinearOperator; 3] = [&fft, &direct, &dist];
    let outputs: Vec<Vec<f64>> =
        realizations.iter().map(|r| r.apply_forward(&m).unwrap()).collect();
    for pair in outputs.windows(2) {
        let err: f64 =
            pair[0].iter().zip(&pair[1]).map(|(a, b)| (a - b) * (a - b)).sum::<f64>().sqrt();
        assert!(err < 1e-11, "realizations disagree: {err}");
    }
}
