//! Concurrency stress tests for the injector queue and pool protocol —
//! the stable-toolchain substitute for a `-Zsanitizer=thread` leg (the
//! workspace pins a stable compiler, and `-Zbuild-std` needs nightly).
//!
//! Strategy: hammer the pool from many OS threads at once so queue
//! pushes, retracts, steals, latch waits, and panic unwinds interleave
//! as densely as a small machine allows, and check *results* (exact
//! counts, exact bits) rather than timing. The CI thread-count matrix
//! runs this at `RAYON_NUM_THREADS ∈ {1, 2, 8}`, covering the
//! sequential short-circuit, the minimal two-lane race, and heavy
//! oversubscription on small runners.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Barrier;

use rayon::prelude::*;

/// Many external threads drive overlapping parallel-for work through
/// the one global queue; every element must be visited exactly once per
/// drive.
#[test]
fn concurrent_drives_from_many_threads() {
    const DRIVERS: usize = 8;
    const ROUNDS: usize = 25;
    const N: usize = 10_000;
    let barrier = Barrier::new(DRIVERS);
    std::thread::scope(|s| {
        for t in 0..DRIVERS {
            let barrier = &barrier;
            s.spawn(move || {
                barrier.wait();
                for round in 0..ROUNDS {
                    let visits = AtomicUsize::new(0);
                    let sum = AtomicUsize::new(0);
                    (0..N).into_par_iter().for_each(|i| {
                        visits.fetch_add(1, Ordering::Relaxed);
                        sum.fetch_add(i, Ordering::Relaxed);
                    });
                    assert_eq!(visits.load(Ordering::Relaxed), N, "driver {t} round {round}");
                    assert_eq!(sum.load(Ordering::Relaxed), N * (N - 1) / 2);
                }
            });
        }
    });
}

/// Nested fork-join (join inside join inside par_iter) across several
/// external threads — the shape that deadlocks a pool whose waiters
/// refuse to help.
#[test]
fn nested_joins_under_contention() {
    fn tree_sum(lo: u64, hi: u64) -> u64 {
        if hi - lo <= 64 {
            return (lo..hi).sum();
        }
        let mid = lo + (hi - lo) / 2;
        let (a, b) = rayon::join(|| tree_sum(lo, mid), || tree_sum(mid, hi));
        a + b
    }
    std::thread::scope(|s| {
        for _ in 0..4 {
            s.spawn(|| {
                for _ in 0..50 {
                    let total: u64 =
                        (0..8u64).into_par_iter().map(|k| tree_sum(k * 1000, (k + 1) * 1000)).sum();
                    assert_eq!(total, 8000 * 7999 / 2);
                }
            });
        }
    });
}

/// Panic storm: panics racing through the queue from several threads
/// must each reach their own caller, and the pool must keep scheduling
/// work for everyone else throughout.
#[test]
fn panic_storm_does_not_poison_or_deadlock() {
    const DRIVERS: usize = 6;
    std::thread::scope(|s| {
        for t in 0..DRIVERS {
            s.spawn(move || {
                for round in 0..30 {
                    if (t + round) % 2 == 0 {
                        let caught = std::panic::catch_unwind(|| {
                            (0..5000usize).into_par_iter().for_each(|i| {
                                if i == 2500 + t {
                                    panic!("storm {t}/{round}");
                                }
                            });
                        });
                        assert!(caught.is_err(), "driver {t} round {round} lost its panic");
                    } else {
                        let sum: usize = (0..5000usize).into_par_iter().sum();
                        assert_eq!(sum, 5000 * 4999 / 2, "pool corrupted after panics");
                    }
                }
            });
        }
    });
    // Everyone's gone; the pool still works from the main thread.
    assert_eq!((0..100usize).into_par_iter().count(), 100);
}

/// Mutable chunk writes from racing drivers: disjoint-slice handout must
/// never alias, and every element must end up written by its own chunk.
#[test]
fn chunked_mutation_is_exact_under_contention() {
    std::thread::scope(|s| {
        for t in 0..6usize {
            s.spawn(move || {
                for round in 0..40 {
                    let n = 4096 + 64 * round;
                    let chunk = 1 + (t * 13 + round) % 97;
                    let mut data = vec![usize::MAX; n];
                    data.par_chunks_mut(chunk).enumerate().for_each(|(c, slab)| {
                        for (i, x) in slab.iter_mut().enumerate() {
                            *x = c * chunk + i;
                        }
                    });
                    assert!(
                        data.iter().enumerate().all(|(i, &x)| x == i),
                        "aliased or skipped chunk at n={n} chunk={chunk}"
                    );
                }
            });
        }
    });
}

/// Scope spawns racing with parallel iterators; spawn counts must be
/// exact and nested spawns must complete before the scope returns.
#[test]
fn scopes_under_contention() {
    std::thread::scope(|s| {
        for _ in 0..4 {
            s.spawn(|| {
                for _ in 0..30 {
                    let count = AtomicUsize::new(0);
                    rayon::scope(|scope| {
                        for _ in 0..16 {
                            scope.spawn(|inner| {
                                count.fetch_add(1, Ordering::SeqCst);
                                inner.spawn(|_| {
                                    count.fetch_add(1, Ordering::SeqCst);
                                });
                            });
                        }
                    });
                    assert_eq!(count.load(Ordering::SeqCst), 32);
                }
            });
        }
    });
}

/// Floating-point reductions keep their exact bits while the queue is
/// saturated by other threads — scheduling noise must never reach the
/// combine tree.
#[test]
fn reduction_bits_are_stable_under_load() {
    let v: Vec<f64> = (0..20_000).map(|i| (i as f64 * 0.738_219).sin() * 1e3).collect();
    let baseline: f64 = v.par_iter().map(|&x| x * 1.000_000_119).sum();
    std::thread::scope(|s| {
        // Background load.
        for _ in 0..3 {
            s.spawn(|| {
                for _ in 0..60 {
                    let _ = (0..3000usize).into_par_iter().sum::<usize>();
                }
            });
        }
        // Foreground repetitions must reproduce the bits exactly.
        for _ in 0..60 {
            let again: f64 = v.par_iter().map(|&x| x * 1.000_000_119).sum();
            assert_eq!(baseline.to_bits(), again.to_bits(), "association leaked scheduling");
        }
    });
}
