//! Sequential, dependency-free stand-in for the subset of [`rayon`]'s API
//! this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this shim as a path dependency named `rayon`. Every `par_*`
//! adapter simply returns the corresponding standard-library iterator, so
//! call sites type-check and run with identical semantics, just without
//! work-stealing parallelism. Swapping in the real `rayon` is a one-line
//! change in the root `Cargo.toml` (`[workspace.dependencies]`) and
//! requires no source edits.
//!
//! [`rayon`]: https://docs.rs/rayon

pub mod iter {
    /// Mirror of `rayon::iter::ParallelIterator`, satisfied by every
    /// standard iterator so generic bounds written against rayon compile
    /// unchanged.
    pub trait ParallelIterator: Iterator {
        /// Sequential `for_each_init`: one `init()` value reused across
        /// the whole iteration (rayon builds one per work-stealing split).
        fn for_each_init<T, INIT, F>(self, init: INIT, op: F)
        where
            Self: Sized,
            INIT: Fn() -> T,
            F: Fn(&mut T, Self::Item),
        {
            let mut state = init();
            for item in self {
                op(&mut state, item);
            }
        }
    }
    impl<I: Iterator> ParallelIterator for I {}

    /// Mirror of `rayon::iter::IntoParallelIterator`; `into_par_iter`
    /// degrades to `into_iter`.
    pub trait IntoParallelIterator {
        type Iter: Iterator<Item = Self::Item>;
        type Item;
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<I: IntoIterator> IntoParallelIterator for I {
        type Iter = I::IntoIter;
        type Item = I::Item;
        fn into_par_iter(self) -> I::IntoIter {
            self.into_iter()
        }
    }

    /// Mirror of `rayon::iter::IntoParallelRefIterator` (`par_iter`).
    pub trait IntoParallelRefIterator<'data> {
        type Iter: Iterator<Item = Self::Item>;
        type Item: 'data;
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, I: 'data + ?Sized> IntoParallelRefIterator<'data> for I
    where
        &'data I: IntoIterator,
    {
        type Iter = <&'data I as IntoIterator>::IntoIter;
        type Item = <&'data I as IntoIterator>::Item;
        fn par_iter(&'data self) -> Self::Iter {
            self.into_iter()
        }
    }

    /// Mirror of `rayon::iter::IntoParallelRefMutIterator` (`par_iter_mut`).
    pub trait IntoParallelRefMutIterator<'data> {
        type Iter: Iterator<Item = Self::Item>;
        type Item: 'data;
        fn par_iter_mut(&'data mut self) -> Self::Iter;
    }

    impl<'data, I: 'data + ?Sized> IntoParallelRefMutIterator<'data> for I
    where
        &'data mut I: IntoIterator,
    {
        type Iter = <&'data mut I as IntoIterator>::IntoIter;
        type Item = <&'data mut I as IntoIterator>::Item;
        fn par_iter_mut(&'data mut self) -> Self::Iter {
            self.into_iter()
        }
    }
}

pub mod slice {
    /// Mirror of `rayon::slice::ParallelSlice`.
    pub trait ParallelSlice<T> {
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T>;
        fn par_chunks_exact(&self, chunk_size: usize) -> std::slice::ChunksExact<'_, T>;
    }

    impl<T> ParallelSlice<T> for [T] {
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T> {
            self.chunks(chunk_size)
        }
        fn par_chunks_exact(&self, chunk_size: usize) -> std::slice::ChunksExact<'_, T> {
            self.chunks_exact(chunk_size)
        }
    }

    /// Mirror of `rayon::slice::ParallelSliceMut`.
    pub trait ParallelSliceMut<T> {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
        fn par_chunks_exact_mut(&mut self, chunk_size: usize) -> std::slice::ChunksExactMut<'_, T>;
    }

    impl<T> ParallelSliceMut<T> for [T] {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
            self.chunks_mut(chunk_size)
        }
        fn par_chunks_exact_mut(&mut self, chunk_size: usize) -> std::slice::ChunksExactMut<'_, T> {
            self.chunks_exact_mut(chunk_size)
        }
    }
}

pub mod prelude {
    pub use crate::iter::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParallelIterator,
    };
    pub use crate::slice::{ParallelSlice, ParallelSliceMut};
}

/// Sequential `rayon::join`: runs both closures on the current thread.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (oper_a(), oper_b())
}

/// Reports the hardware parallelism the real rayon pool would use.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn adapters_match_std() {
        let v = vec![1i32, 2, 3, 4];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);

        let mut out = vec![0i32; 4];
        out.par_iter_mut().enumerate().for_each(|(i, o)| *o = i as i32);
        assert_eq!(out, vec![0, 1, 2, 3]);

        let chunks: Vec<&[i32]> = v.par_chunks_exact(2).collect();
        assert_eq!(chunks, vec![&[1, 2][..], &[3, 4][..]]);

        let sum: i32 = (0..10).into_par_iter().sum();
        assert_eq!(sum, 45);

        let (a, b) = crate::join(|| 1, || 2);
        assert_eq!((a, b), (1, 2));
        assert!(crate::current_num_threads() >= 1);
    }
}
