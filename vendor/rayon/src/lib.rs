//! Multithreaded, dependency-free stand-in for the subset of [`rayon`]'s
//! API this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this shim as a path dependency named `rayon`. Unlike the
//! original sequential shim, this version runs parallel work on a real
//! thread pool: a lazily-initialized global registry of workers (sized
//! by `RAYON_NUM_THREADS`; see `registry.rs`) fed by a shared
//! injector queue, with `join`-based recursive splitting, helping
//! waiters, and full panic propagation. Swapping in the real `rayon` is
//! still a one-line change in the root `Cargo.toml`
//! (`[workspace.dependencies]`) and requires no source edits.
//!
//! One behavioral guarantee is *stronger* than upstream rayon's and is
//! relied on by the workspace's determinism CI gate: every parallel
//! operation splits its input through a tree that depends only on the
//! input length — never on the thread count or on scheduling — so
//! results (including `sum`/`reduce`/`collect` associations and
//! `for_each_init` leaf boundaries) are byte-identical at every
//! `RAYON_NUM_THREADS`. See [`crate::iter`] for the details and for
//! what to keep in mind before swapping to the adaptive upstream
//! splitter.
//!
//! [`rayon`]: https://docs.rs/rayon

use std::any::Any;
use std::marker::PhantomData;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use registry::{HeapJob, Registry, StackJob};

pub mod iter;
pub(crate) mod registry;
pub mod slice;

pub mod prelude {
    pub use crate::iter::{
        IndexedParallelIterator, IntoParallelIterator, IntoParallelRefIterator,
        IntoParallelRefMutIterator, ParallelIterator,
    };
    pub use crate::slice::{ParallelSlice, ParallelSliceMut};
}

/// Potentially-parallel `rayon::join`: `oper_b` is offered to the pool
/// while the calling thread runs `oper_a`; if no worker takes it in
/// time, the caller reclaims and runs it inline. While waiting for a
/// stolen `oper_b`, the caller executes other queued jobs, so nested
/// joins cannot deadlock. A panic in either closure resumes on the
/// calling thread (after both arms have completed or been reclaimed —
/// the pool itself is never poisoned).
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let registry = Registry::global();
    if !registry.is_parallel() {
        // Single-thread mode: same call tree, straight-line execution.
        return (oper_a(), oper_b());
    }
    let job_b = StackJob::new(oper_b);
    // SAFETY: `job_b` outlives every path below — we either retract it
    // from the queue (exclusive ownership back) or wait on its latch.
    let job_ref = unsafe { job_b.as_job_ref() };
    registry.inject(job_ref);

    let result_a = panic::catch_unwind(AssertUnwindSafe(oper_a));

    if registry.retract(job_ref) {
        // No worker touched B; run it here. If A panicked, B is simply
        // dropped unexecuted (matching rayon) and A's panic resumes.
        match result_a {
            Ok(ra) => (ra, job_b.run_inline()),
            Err(payload) => panic::resume_unwind(payload),
        }
    } else {
        // A worker holds B: help with other queued work until it lands.
        registry.wait_while_helping(&|| job_b.latch.probe());
        // SAFETY: the latch is set, so the result slot is written and
        // no other thread will touch the job again.
        let result_b = unsafe { job_b.take_result() };
        match (result_a, result_b) {
            (Ok(ra), Ok(rb)) => (ra, rb),
            (Err(payload), _) | (Ok(_), Err(payload)) => panic::resume_unwind(payload),
        }
    }
}

/// The number of threads the pool runs work on (workers plus the
/// participating caller) — `RAYON_NUM_THREADS` if set and non-zero,
/// otherwise the machine's available parallelism.
pub fn current_num_threads() -> usize {
    Registry::global().num_threads()
}

/// Mirror of `rayon::Scope`: spawn point for tasks that borrow from the
/// enclosing stack frame and are guaranteed to finish before [`scope`]
/// returns.
pub struct Scope<'scope> {
    /// Spawned-but-unfinished jobs, plus 1 for the scope body itself.
    pending: AtomicUsize,
    /// First panic from any spawned job (later ones are dropped, like
    /// rayon).
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    marker: PhantomData<&'scope mut &'scope ()>,
}

impl<'scope> Scope<'scope> {
    /// Queue `body` on the pool. It may borrow anything that outlives
    /// the scope; the enclosing [`scope`] call does not return until
    /// every spawn has run to completion.
    pub fn spawn<BODY>(&self, body: BODY)
    where
        BODY: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        self.pending.fetch_add(1, Ordering::SeqCst);
        // Erase the scope lifetime: the completion count keeps `self`
        // (which lives in `scope`'s frame) alive until the job runs.
        let scope_ptr: *const Scope<'scope> = self;
        let scope_ptr = scope_ptr as usize;
        let wrapper = move || {
            // SAFETY: `scope` waits for `pending` to reach zero before
            // returning, so the pointee is alive for the whole call.
            let scope: &Scope<'_> = unsafe { &*(scope_ptr as *const Scope<'_>) };
            let result = panic::catch_unwind(AssertUnwindSafe(|| body(scope)));
            if let Err(payload) = result {
                let mut slot =
                    scope.panic.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                slot.get_or_insert(payload);
            }
            scope.complete_one();
        };
        // SAFETY(lifetime erasure): the wrapper only runs once, before
        // `scope` returns; HeapJob boxes it so the spawning frame may
        // unwind first.
        let job = {
            let boxed: Box<dyn FnOnce() + Send + 'scope> = Box::new(wrapper);
            // Extend to 'static for the type-erased queue; soundness is
            // the completion-count argument above.
            let boxed: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(boxed) };
            HeapJob::into_job_ref(boxed)
        };
        Registry::global().inject(job);
    }

    fn complete_one(&self) {
        self.pending.fetch_sub(1, Ordering::SeqCst);
        // Wake the scope owner if it is parked waiting for completion.
        // (Reuses the latch wakeup path: serialize + notify.)
        registry::wake_all();
    }
}

/// Mirror of `rayon::scope`: runs `op`, then blocks — helping the pool —
/// until every task spawned on the scope has finished. Panics from the
/// body or any spawn resume on the caller after the scope has fully
/// drained.
pub fn scope<'scope, OP, R>(op: OP) -> R
where
    OP: FnOnce(&Scope<'scope>) -> R + Send,
    R: Send,
{
    let s = Scope { pending: AtomicUsize::new(1), panic: Mutex::new(None), marker: PhantomData };
    let result = panic::catch_unwind(AssertUnwindSafe(|| op(&s)));
    s.complete_one();
    Registry::global().wait_while_helping(&|| s.pending.load(Ordering::SeqCst) == 0);
    let spawned_panic = s.panic.lock().unwrap_or_else(std::sync::PoisonError::into_inner).take();
    match result {
        Err(payload) => panic::resume_unwind(payload),
        Ok(r) => match spawned_panic {
            Some(payload) => panic::resume_unwind(payload),
            None => r,
        },
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn adapters_match_std() {
        let v = vec![1i32, 2, 3, 4];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);

        let mut out = vec![0i32; 4];
        out.par_iter_mut().enumerate().for_each(|(i, o)| *o = i as i32);
        assert_eq!(out, vec![0, 1, 2, 3]);

        let chunks: Vec<&[i32]> = v.par_chunks_exact(2).collect();
        assert_eq!(chunks, vec![&[1, 2][..], &[3, 4][..]]);

        let sum: i32 = (0..10i32).into_par_iter().sum();
        assert_eq!(sum, 45);

        let (a, b) = crate::join(|| 1, || 2);
        assert_eq!((a, b), (1, 2));
        assert!(crate::current_num_threads() >= 1);
    }

    #[test]
    fn chunked_writes_cover_every_element() {
        let n = 10_000;
        let mut data = vec![0u64; n];
        data.par_chunks_mut(17).enumerate().for_each(|(c, chunk)| {
            for (i, x) in chunk.iter_mut().enumerate() {
                *x = (c * 17 + i) as u64;
            }
        });
        assert!(data.iter().enumerate().all(|(i, &x)| x == i as u64));
    }

    #[test]
    fn ragged_par_chunks_keeps_tail() {
        let v: Vec<usize> = (0..10).collect();
        let lens: Vec<usize> = v.par_chunks(4).map(|c| c.len()).collect();
        assert_eq!(lens, vec![4, 4, 2]);
        let lens: Vec<usize> = v.par_chunks_exact(4).map(|c| c.len()).collect();
        assert_eq!(lens, vec![4, 4]);
    }

    #[test]
    fn zip_truncates_to_shorter_side() {
        let a: Vec<usize> = (0..9).collect();
        let mut b = vec![0usize; 7];
        a.par_chunks_exact(3).zip(b.par_chunks_mut(3)).for_each(|(src, dst)| {
            for (d, s) in dst.iter_mut().zip(src) {
                *d = *s;
            }
        });
        assert_eq!(b, vec![0, 1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn for_each_init_builds_at_most_one_state_per_leaf() {
        let inits = AtomicUsize::new(0);
        let v: Vec<usize> = (0..1000).collect();
        let total = AtomicUsize::new(0);
        v.par_iter().for_each_init(
            || {
                inits.fetch_add(1, Ordering::Relaxed);
                0usize
            },
            |state, &x| {
                *state += 1;
                total.fetch_add(x, Ordering::Relaxed);
            },
        );
        let inits = inits.load(Ordering::Relaxed);
        assert!((1..=32).contains(&inits), "one init per leaf, got {inits}");
        assert_eq!(total.load(Ordering::Relaxed), 499_500);
    }

    #[test]
    fn join_propagates_panics_and_pool_survives() {
        let caught = std::panic::catch_unwind(|| {
            crate::join(|| 1, || -> i32 { panic!("boom-b") });
        });
        assert!(caught.is_err());
        let caught = std::panic::catch_unwind(|| {
            crate::join(|| -> i32 { panic!("boom-a") }, || 2);
        });
        assert!(caught.is_err());
        // The pool keeps working after both panics.
        let sum: u64 = (0..1000u64).into_par_iter().sum();
        assert_eq!(sum, 499_500);
    }

    #[test]
    fn for_each_panic_propagates_without_deadlock() {
        let v: Vec<usize> = (0..10_000).collect();
        let caught = std::panic::catch_unwind(|| {
            v.par_iter().for_each(|&x| {
                if x == 7777 {
                    panic!("item panic");
                }
            });
        });
        assert!(caught.is_err(), "panic inside for_each must reach the caller");
        // No poisoned state: the very next parallel call works.
        let count = v.par_iter().count();
        assert_eq!(count, 10_000);
    }

    #[test]
    fn scope_runs_all_spawns_before_returning() {
        let counter = AtomicUsize::new(0);
        crate::scope(|s| {
            for _ in 0..64 {
                s.spawn(|inner| {
                    counter.fetch_add(1, Ordering::SeqCst);
                    // Nested spawn from a spawned task.
                    inner.spawn(|_| {
                        counter.fetch_add(1, Ordering::SeqCst);
                    });
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 128);
    }

    #[test]
    fn scope_propagates_spawn_panics() {
        let caught = std::panic::catch_unwind(|| {
            crate::scope(|s| {
                s.spawn(|_| panic!("spawned panic"));
            });
        });
        assert!(caught.is_err());
        assert_eq!((0..10u32).into_par_iter().sum::<u32>(), 45);
    }

    #[test]
    fn nested_joins_compute_correctly() {
        fn fib(n: u64) -> u64 {
            if n < 2 {
                return n;
            }
            let (a, b) = crate::join(|| fib(n - 1), || fib(n - 2));
            a + b
        }
        assert_eq!(fib(16), 987);
    }

    #[test]
    fn reduction_association_is_repeatable() {
        // Cancellation-prone values: any change in association changes
        // the bits. Repeat runs must agree exactly (split tree is a pure
        // function of length, independent of scheduling).
        let v: Vec<f64> = (0..4096).map(|i| ((i * 37) % 1001) as f64 * 1e-3 - 0.5).collect();
        let first: f64 = v.par_iter().map(|&x| x * 1.000000119).sum();
        for _ in 0..20 {
            let again: f64 = v.par_iter().map(|&x| x * 1.000000119).sum();
            assert_eq!(first.to_bits(), again.to_bits());
        }
    }
}
