//! Parallel slice chunking — the `rayon::slice` subset the workspace
//! uses. Chunk iterators are [`crate::iter::Producer`]s whose unit is a
//! whole chunk, so splits always land on chunk boundaries and the
//! trailing partial chunk (for the non-`exact` variants) stays intact.

use crate::iter::{parallel_iterator_via_producer, IndexedParallelIterator, Producer};

/// Mirror of `rayon::slice::ParallelSlice`.
pub trait ParallelSlice<T: Sync> {
    fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T>;
    fn par_chunks_exact(&self, chunk_size: usize) -> ParChunksExact<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T> {
        assert!(chunk_size != 0, "chunk_size must be non-zero");
        ParChunks { slice: self, size: chunk_size }
    }

    fn par_chunks_exact(&self, chunk_size: usize) -> ParChunksExact<'_, T> {
        assert!(chunk_size != 0, "chunk_size must be non-zero");
        // Trim the remainder up front: every element index the producer
        // ever touches is then a multiple of `size`.
        let whole = self.len() - self.len() % chunk_size;
        ParChunksExact { slice: &self[..whole], size: chunk_size }
    }
}

/// Mirror of `rayon::slice::ParallelSliceMut`.
pub trait ParallelSliceMut<T: Send> {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
    fn par_chunks_exact_mut(&mut self, chunk_size: usize) -> ParChunksExactMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        assert!(chunk_size != 0, "chunk_size must be non-zero");
        ParChunksMut { slice: self, size: chunk_size }
    }

    fn par_chunks_exact_mut(&mut self, chunk_size: usize) -> ParChunksExactMut<'_, T> {
        assert!(chunk_size != 0, "chunk_size must be non-zero");
        let whole = self.len() - self.len() % chunk_size;
        ParChunksExactMut { slice: &mut self[..whole], size: chunk_size }
    }
}

/// Stamp producer + iterator impls for one chunking type. `$trim` maps a
/// chunk index to an element index for `split_at` (clamped for the
/// ragged-tail variants).
macro_rules! par_chunks_impl {
    (
        $name:ident, $bound:ident, $split:ident, $std_iter:ty, $std_ctor:ident,
        [$($slice_ty:tt)*], $item:ty, $count:expr
    ) => {
        pub struct $name<'a, T> {
            slice: $($slice_ty)*,
            size: usize,
        }

        impl<'a, T: $bound> Producer for $name<'a, T> {
            type Item = $item;
            type IntoIter = $std_iter;

            fn len(&self) -> usize {
                let count: fn(usize, usize) -> usize = $count;
                count(self.slice.len(), self.size)
            }

            fn split_at(self, index: usize) -> (Self, Self) {
                let at = (index * self.size).min(self.slice.len());
                let (l, r) = self.slice.$split(at);
                (
                    $name { slice: l, size: self.size },
                    $name { slice: r, size: self.size },
                )
            }

            fn into_iter(self) -> Self::IntoIter {
                self.slice.$std_ctor(self.size)
            }
        }

        impl<'a, T: $bound> IndexedParallelIterator for $name<'a, T> {
            type Producer = Self;

            fn len(&self) -> usize {
                Producer::len(self)
            }

            fn into_producer(self) -> Self {
                self
            }
        }

        parallel_iterator_via_producer! {
            impl ['a, T] ParallelIterator<Item = $item> for $name<'a, T>
            where [T: $bound,]
        }
    };
}

par_chunks_impl!(
    ParChunks,
    Sync,
    split_at,
    std::slice::Chunks<'a, T>,
    chunks,
    [&'a [T]],
    &'a [T],
    |len, size| len.div_ceil(size)
);
par_chunks_impl!(
    ParChunksExact,
    Sync,
    split_at,
    std::slice::ChunksExact<'a, T>,
    chunks_exact,
    [&'a [T]],
    &'a [T],
    |len, size| len / size
);
par_chunks_impl!(
    ParChunksMut,
    Send,
    split_at_mut,
    std::slice::ChunksMut<'a, T>,
    chunks_mut,
    [&'a mut [T]],
    &'a mut [T],
    |len, size| len.div_ceil(size)
);
par_chunks_impl!(
    ParChunksExactMut,
    Send,
    split_at_mut,
    std::slice::ChunksExactMut<'a, T>,
    chunks_exact_mut,
    [&'a mut [T]],
    &'a mut [T],
    |len, size| len / size
);
