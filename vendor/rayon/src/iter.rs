//! Parallel iterators over the pool — the subset of `rayon::iter` this
//! workspace uses, rebuilt on real parallelism.
//!
//! Everything is *indexed*: a parallel iterator is backed by a
//! [`Producer`] that knows its exact length and can split at any index.
//! The bridge recursively halves the producer into at most
//! `MAX_LEAVES` leaves via [`crate::join`], runs each leaf as a
//! sequential loop, and combines leaf results back up the split tree.
//!
//! **Determinism guarantee.** The split tree is a pure function of the
//! job *length* — never the thread count, never scheduling — so every
//! reduction (`sum`, `collect`, the combine step of `fold_chunks`)
//! associates identically at `RAYON_NUM_THREADS=1` and `=1024`, and
//! leaves covering disjoint output ranges write byte-identical results
//! regardless of which worker runs them. This is *stronger* than
//! upstream rayon, which splits adaptively: code that relies on
//! bit-stable floating-point reductions across thread counts must keep
//! its associations inside items/leaves (as the BLAS pairwise kernels
//! and `tree_reduce_sum` do) to stay deterministic after a swap to the
//! real crate.

/// Upper bound on the number of leaves a parallel call fans out to.
/// Fixed (not thread-count-derived) so the split tree — and with it
/// every reduction association — depends only on the length. 32 leaves
/// give an 8-worker pool four chunks per lane of stealing slack while
/// keeping per-leaf dispatch overhead (one queue push/pop) negligible
/// for the coarse chunks the workspace parallelizes over.
const MAX_LEAVES: usize = 32;

fn leaf_count(len: usize) -> usize {
    len.clamp(1, MAX_LEAVES)
}

/// An exactly-sized, splittable source of items — the engine behind
/// every indexed parallel iterator.
pub trait Producer: Send + Sized {
    type Item: Send;
    type IntoIter: Iterator<Item = Self::Item>;

    /// Remaining items.
    fn len(&self) -> usize;

    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Split into `[0, index)` and `[index, len)`.
    fn split_at(self, index: usize) -> (Self, Self);

    /// Sequential iterator over a leaf's items.
    fn into_iter(self) -> Self::IntoIter;
}

/// Deterministic proportional midpoint: leaf boundaries land on the same
/// indices no matter how the recursion is scheduled.
fn proportional_mid(len: usize, left_leaves: usize, leaves: usize) -> usize {
    ((len as u128 * left_leaves as u128) / leaves as u128) as usize
}

fn drive<P, R, R2, ID, F, FIN, C>(
    producer: P,
    leaves: usize,
    identity: &ID,
    fold: &F,
    finish: &FIN,
    combine: &C,
) -> R2
where
    P: Producer,
    R2: Send,
    ID: Fn() -> R + Sync,
    F: Fn(R, P::Item) -> R + Sync,
    FIN: Fn(R) -> R2 + Sync,
    C: Fn(R2, R2) -> R2 + Sync,
{
    if leaves <= 1 || producer.len() <= 1 {
        let mut acc = identity();
        for item in producer.into_iter() {
            acc = fold(acc, item);
        }
        // `finish` runs before the leaf returns, on the leaf's thread:
        // per-leaf state (the fold accumulator `R`, which never crosses
        // threads) is released *here*, not parked in a join result slot
        // until the sibling subtree completes — this is what bounds
        // `for_each_init` states to one per concurrently-running worker.
        return finish(acc);
    }
    let left_leaves = leaves / 2;
    let mid = proportional_mid(producer.len(), left_leaves, leaves);
    let (left, right) = producer.split_at(mid);
    let (ra, rb) = crate::join(
        || drive(left, left_leaves, identity, fold, finish, combine),
        || drive(right, leaves - left_leaves, identity, fold, finish, combine),
    );
    combine(ra, rb)
}

/// Run a producer through the pool with the deterministic split tree.
pub(crate) fn bridge_fold<P, R, R2, ID, F, FIN, C>(
    producer: P,
    identity: ID,
    fold: F,
    finish: FIN,
    combine: C,
) -> R2
where
    P: Producer,
    R2: Send,
    ID: Fn() -> R + Sync,
    F: Fn(R, P::Item) -> R + Sync,
    FIN: Fn(R) -> R2 + Sync,
    C: Fn(R2, R2) -> R2 + Sync,
{
    // The thread count deliberately plays no role here: single-thread
    // mode folds through the *same* split tree (`join` simply runs both
    // arms inline), so every combine association — and with it every
    // `sum`/`collect`/`reduce` result — is byte-identical at any
    // RAYON_NUM_THREADS.
    let leaves = leaf_count(producer.len());
    drive(producer, leaves, &identity, &fold, &finish, &combine)
}

/// Mirror of `rayon::iter::ParallelIterator` (merged with the indexed
/// combinators this workspace uses).
pub trait ParallelIterator: Sized + Send {
    type Item: Send;

    /// Core driver every consumer is built on: fold items within leaves
    /// (`identity` once per executed leaf — ≤ `MAX_LEAVES`, exactly the
    /// concurrency-visible granularity — then `fold` once per item),
    /// *finish* each leaf's accumulator into the cross-thread result
    /// type on the leaf's own thread, and `combine` finished results up
    /// the deterministic split tree.
    ///
    /// The leaf accumulator `R` never crosses threads and is consumed by
    /// `finish` before the leaf returns — per-leaf state (pooled scratch
    /// guards and the like) is therefore released at leaf completion,
    /// never parked in a join result slot while a sibling subtree runs.
    fn drive_fold<R, R2, ID, F, FIN, C>(self, identity: ID, fold: F, finish: FIN, combine: C) -> R2
    where
        R2: Send,
        ID: Fn() -> R + Sync + Send,
        F: Fn(R, Self::Item) -> R + Sync + Send,
        FIN: Fn(R) -> R2 + Sync + Send,
        C: Fn(R2, R2) -> R2 + Sync + Send;

    /// [`Self::drive_fold`] without a leaf-finishing step: the fold
    /// accumulator itself travels up the combine tree.
    fn fold_chunks<R, ID, F, C>(self, identity: ID, fold: F, combine: C) -> R
    where
        R: Send,
        ID: Fn() -> R + Sync + Send,
        F: Fn(R, Self::Item) -> R + Sync + Send,
        C: Fn(R, R) -> R + Sync + Send,
    {
        self.drive_fold(identity, fold, |acc| acc, combine)
    }

    fn for_each<F>(self, op: F)
    where
        F: Fn(Self::Item) + Sync + Send,
    {
        self.fold_chunks(|| (), |(), item| op(item), |(), ()| ());
    }

    /// `for_each` with per-leaf state: `init()` builds one fresh value
    /// per executed work chunk (leaf), which the chunk's items then
    /// share sequentially and which is dropped when the chunk finishes.
    /// At most `MAX_LEAVES` values are built per call and at most one
    /// per concurrently-running worker is live at a time — matching real
    /// rayon's "approximately once per thread" contract, *not* one value
    /// for the whole iteration.
    fn for_each_init<T, INIT, F>(self, init: INIT, op: F)
    where
        T: Send,
        INIT: Fn() -> T + Sync + Send,
        F: Fn(&mut T, Self::Item) + Sync + Send,
    {
        self.drive_fold(
            || None,
            |state: Option<T>, item| {
                let mut state = state.unwrap_or_else(&init);
                op(&mut state, item);
                Some(state)
            },
            // Leaf finish: drop the state here, on the leaf's thread.
            drop,
            |(), ()| (),
        );
    }

    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync + Send,
    {
        Map { base: self, f }
    }

    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item> + std::iter::Sum<S> + Send,
    {
        self.fold_chunks(
            || std::iter::empty::<Self::Item>().sum::<S>(),
            |acc, item| [acc, std::iter::once(item).sum::<S>()].into_iter().sum(),
            |a, b| [a, b].into_iter().sum(),
        )
    }

    fn count(self) -> usize {
        self.fold_chunks(|| 0usize, |acc, _| acc + 1, |a, b| a + b)
    }

    /// Tree reduction with the deterministic leaf/combine association.
    fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
    where
        ID: Fn() -> Self::Item + Sync + Send,
        OP: Fn(Self::Item, Self::Item) -> Self::Item + Sync + Send,
    {
        self.fold_chunks(&identity, &op, &op)
    }

    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>,
    {
        C::from_par_iter(self)
    }
}

/// Mirror of `rayon::iter::FromParallelIterator` for `collect`.
pub trait FromParallelIterator<T: Send> {
    fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Self {
        // Leaves arrive in left-to-right tree order == sequential order.
        iter.fold_chunks(
            Vec::new,
            |mut acc, item| {
                acc.push(item);
                acc
            },
            |mut a, mut b| {
                a.append(&mut b);
                a
            },
        )
    }
}

/// Mirror of `rayon::iter::IndexedParallelIterator`: backed by a
/// [`Producer`], which unlocks the position-aware combinators.
pub trait IndexedParallelIterator: ParallelIterator {
    type Producer: Producer<Item = Self::Item>;

    /// Exact number of items.
    fn len(&self) -> usize;

    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn into_producer(self) -> Self::Producer;

    /// Pair items positionally; the result length is the shorter input's.
    fn zip<B>(self, other: B) -> Zip<Self, B>
    where
        B: IndexedParallelIterator,
    {
        Zip { a: self, b: other }
    }

    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { base: self }
    }

    fn take(self, n: usize) -> Take<Self> {
        Take { base: self, n }
    }
}

/// Stamp the `ParallelIterator` impl for a type whose
/// `IndexedParallelIterator` impl supplies the producer.
macro_rules! parallel_iterator_via_producer {
    (impl [$($generics:tt)*] ParallelIterator<Item = $item:ty> for $ty:ty where [$($bounds:tt)*]) => {
        impl<$($generics)*> $crate::iter::ParallelIterator for $ty
        where
            $($bounds)*
        {
            type Item = $item;

            fn drive_fold<R_, R2_, ID_, F_, FIN_, C_>(
                self,
                identity: ID_,
                fold: F_,
                finish: FIN_,
                combine: C_,
            ) -> R2_
            where
                R2_: Send,
                ID_: Fn() -> R_ + Sync + Send,
                F_: Fn(R_, Self::Item) -> R_ + Sync + Send,
                FIN_: Fn(R_) -> R2_ + Sync + Send,
                C_: Fn(R2_, R2_) -> R2_ + Sync + Send,
            {
                $crate::iter::bridge_fold(
                    $crate::iter::IndexedParallelIterator::into_producer(self),
                    identity,
                    fold,
                    finish,
                    combine,
                )
            }
        }
    };
}
pub(crate) use parallel_iterator_via_producer;

// ---------------------------------------------------------------------
// Map: a consumer adapter — it rewrites the fold closure, so it composes
// over any parallel iterator without needing its own producer.
// ---------------------------------------------------------------------

pub struct Map<I, F> {
    base: I,
    f: F,
}

impl<I, F, R> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    F: Fn(I::Item) -> R + Sync + Send,
    R: Send,
{
    type Item = R;

    fn drive_fold<RA, RF, ID, F2, FIN, C>(
        self,
        identity: ID,
        fold: F2,
        finish: FIN,
        combine: C,
    ) -> RF
    where
        RF: Send,
        ID: Fn() -> RA + Sync + Send,
        F2: Fn(RA, Self::Item) -> RA + Sync + Send,
        FIN: Fn(RA) -> RF + Sync + Send,
        C: Fn(RF, RF) -> RF + Sync + Send,
    {
        let f = self.f;
        self.base.drive_fold(identity, move |acc, item| fold(acc, f(item)), finish, combine)
    }
}

// ---------------------------------------------------------------------
// Zip
// ---------------------------------------------------------------------

pub struct Zip<A, B> {
    a: A,
    b: B,
}

pub struct ZipProducer<A, B> {
    a: A,
    b: B,
}

impl<A: Producer, B: Producer> Producer for ZipProducer<A, B> {
    type Item = (A::Item, B::Item);
    type IntoIter = std::iter::Zip<A::IntoIter, B::IntoIter>;

    fn len(&self) -> usize {
        self.a.len().min(self.b.len())
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (al, ar) = self.a.split_at(index);
        let (bl, br) = self.b.split_at(index);
        (ZipProducer { a: al, b: bl }, ZipProducer { a: ar, b: br })
    }

    fn into_iter(self) -> Self::IntoIter {
        self.a.into_iter().zip(self.b.into_iter())
    }
}

impl<A, B> IndexedParallelIterator for Zip<A, B>
where
    A: IndexedParallelIterator,
    B: IndexedParallelIterator,
{
    type Producer = ZipProducer<A::Producer, B::Producer>;

    fn len(&self) -> usize {
        self.a.len().min(self.b.len())
    }

    fn into_producer(self) -> Self::Producer {
        let n = self.len();
        // Truncate both sides up front so splits stay in lockstep.
        let a = self.a.into_producer().split_at(n).0;
        let b = self.b.into_producer().split_at(n).0;
        ZipProducer { a, b }
    }
}

parallel_iterator_via_producer! {
    impl [A, B] ParallelIterator<Item = (A::Item, B::Item)> for Zip<A, B>
    where [A: IndexedParallelIterator, B: IndexedParallelIterator,]
}

// ---------------------------------------------------------------------
// Enumerate
// ---------------------------------------------------------------------

pub struct Enumerate<I> {
    base: I,
}

pub struct EnumerateProducer<P> {
    base: P,
    offset: usize,
}

impl<P: Producer> Producer for EnumerateProducer<P> {
    type Item = (usize, P::Item);
    type IntoIter = std::iter::Zip<std::ops::Range<usize>, P::IntoIter>;

    fn len(&self) -> usize {
        self.base.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(index);
        (
            EnumerateProducer { base: l, offset: self.offset },
            EnumerateProducer { base: r, offset: self.offset + index },
        )
    }

    fn into_iter(self) -> Self::IntoIter {
        let end = self.offset + self.base.len();
        (self.offset..end).zip(self.base.into_iter())
    }
}

impl<I: IndexedParallelIterator> IndexedParallelIterator for Enumerate<I> {
    type Producer = EnumerateProducer<I::Producer>;

    fn len(&self) -> usize {
        self.base.len()
    }

    fn into_producer(self) -> Self::Producer {
        EnumerateProducer { base: self.base.into_producer(), offset: 0 }
    }
}

parallel_iterator_via_producer! {
    impl [I] ParallelIterator<Item = (usize, I::Item)> for Enumerate<I>
    where [I: IndexedParallelIterator,]
}

// ---------------------------------------------------------------------
// Take: truncation happens at producer construction, so the base
// producer type is reused as-is.
// ---------------------------------------------------------------------

pub struct Take<I> {
    base: I,
    n: usize,
}

impl<I: IndexedParallelIterator> IndexedParallelIterator for Take<I> {
    type Producer = I::Producer;

    fn len(&self) -> usize {
        self.base.len().min(self.n)
    }

    fn into_producer(self) -> Self::Producer {
        let n = self.n.min(self.base.len());
        self.base.into_producer().split_at(n).0
    }
}

parallel_iterator_via_producer! {
    impl [I] ParallelIterator<Item = I::Item> for Take<I>
    where [I: IndexedParallelIterator,]
}

// ---------------------------------------------------------------------
// Slices: par_iter / par_iter_mut
// ---------------------------------------------------------------------

pub struct ParIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> Producer for ParIter<'a, T> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;

    fn len(&self) -> usize {
        self.slice.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.slice.split_at(index);
        (ParIter { slice: l }, ParIter { slice: r })
    }

    fn into_iter(self) -> Self::IntoIter {
        self.slice.iter()
    }
}

impl<'a, T: Sync> IndexedParallelIterator for ParIter<'a, T> {
    type Producer = Self;

    fn len(&self) -> usize {
        self.slice.len()
    }

    fn into_producer(self) -> Self {
        self
    }
}

parallel_iterator_via_producer! {
    impl ['a, T] ParallelIterator<Item = &'a T> for ParIter<'a, T>
    where [T: Sync,]
}

pub struct ParIterMut<'a, T> {
    slice: &'a mut [T],
}

impl<'a, T: Send> Producer for ParIterMut<'a, T> {
    type Item = &'a mut T;
    type IntoIter = std::slice::IterMut<'a, T>;

    fn len(&self) -> usize {
        self.slice.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.slice.split_at_mut(index);
        (ParIterMut { slice: l }, ParIterMut { slice: r })
    }

    fn into_iter(self) -> Self::IntoIter {
        self.slice.iter_mut()
    }
}

impl<'a, T: Send> IndexedParallelIterator for ParIterMut<'a, T> {
    type Producer = Self;

    fn len(&self) -> usize {
        self.slice.len()
    }

    fn into_producer(self) -> Self {
        self
    }
}

parallel_iterator_via_producer! {
    impl ['a, T] ParallelIterator<Item = &'a mut T> for ParIterMut<'a, T>
    where [T: Send,]
}

// ---------------------------------------------------------------------
// Ranges
// ---------------------------------------------------------------------

pub struct ParRange<T> {
    range: std::ops::Range<T>,
}

macro_rules! par_range_impl {
    ($($t:ty),*) => {$(
        impl Producer for ParRange<$t> {
            type Item = $t;
            type IntoIter = std::ops::Range<$t>;

            fn len(&self) -> usize {
                if self.range.start >= self.range.end {
                    0
                } else {
                    (self.range.end - self.range.start) as usize
                }
            }

            fn split_at(self, index: usize) -> (Self, Self) {
                let mid = self.range.start + index as $t;
                (
                    ParRange { range: self.range.start..mid },
                    ParRange { range: mid..self.range.end },
                )
            }

            fn into_iter(self) -> Self::IntoIter {
                self.range
            }
        }

        impl IndexedParallelIterator for ParRange<$t> {
            type Producer = Self;

            fn len(&self) -> usize {
                Producer::len(self)
            }

            fn into_producer(self) -> Self {
                self
            }
        }

        parallel_iterator_via_producer! {
            impl [] ParallelIterator<Item = $t> for ParRange<$t> where []
        }

        impl IntoParallelIterator for std::ops::Range<$t> {
            type Iter = ParRange<$t>;
            type Item = $t;

            fn into_par_iter(self) -> ParRange<$t> {
                ParRange { range: self }
            }
        }
    )*};
}

par_range_impl!(usize, u32, u64, i32, i64);

// ---------------------------------------------------------------------
// Entry-point traits
// ---------------------------------------------------------------------

/// Mirror of `rayon::iter::IntoParallelIterator`.
pub trait IntoParallelIterator {
    type Iter: ParallelIterator<Item = Self::Item>;
    type Item: Send;

    fn into_par_iter(self) -> Self::Iter;
}

impl<'a, T: Sync> IntoParallelIterator for &'a [T] {
    type Iter = ParIter<'a, T>;
    type Item = &'a T;

    fn into_par_iter(self) -> ParIter<'a, T> {
        ParIter { slice: self }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a Vec<T> {
    type Iter = ParIter<'a, T>;
    type Item = &'a T;

    fn into_par_iter(self) -> ParIter<'a, T> {
        ParIter { slice: self }
    }
}

impl<'a, T: Send> IntoParallelIterator for &'a mut [T] {
    type Iter = ParIterMut<'a, T>;
    type Item = &'a mut T;

    fn into_par_iter(self) -> ParIterMut<'a, T> {
        ParIterMut { slice: self }
    }
}

impl<'a, T: Send> IntoParallelIterator for &'a mut Vec<T> {
    type Iter = ParIterMut<'a, T>;
    type Item = &'a mut T;

    fn into_par_iter(self) -> ParIterMut<'a, T> {
        ParIterMut { slice: self }
    }
}

/// Mirror of `rayon::iter::IntoParallelRefIterator` (`par_iter`).
pub trait IntoParallelRefIterator<'data> {
    type Iter: ParallelIterator<Item = Self::Item>;
    type Item: Send + 'data;

    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, I: 'data + ?Sized> IntoParallelRefIterator<'data> for I
where
    &'data I: IntoParallelIterator,
{
    type Iter = <&'data I as IntoParallelIterator>::Iter;
    type Item = <&'data I as IntoParallelIterator>::Item;

    fn par_iter(&'data self) -> Self::Iter {
        self.into_par_iter()
    }
}

/// Mirror of `rayon::iter::IntoParallelRefMutIterator` (`par_iter_mut`).
pub trait IntoParallelRefMutIterator<'data> {
    type Iter: ParallelIterator<Item = Self::Item>;
    type Item: Send + 'data;

    fn par_iter_mut(&'data mut self) -> Self::Iter;
}

impl<'data, I: 'data + ?Sized> IntoParallelRefMutIterator<'data> for I
where
    &'data mut I: IntoParallelIterator,
{
    type Iter = <&'data mut I as IntoParallelIterator>::Iter;
    type Item = <&'data mut I as IntoParallelIterator>::Item;

    fn par_iter_mut(&'data mut self) -> Self::Iter {
        self.into_par_iter()
    }
}
