//! The thread pool: a lazily-initialized global registry of worker
//! threads fed by a chunked injector queue.
//!
//! Design notes (what this is, and is not):
//!
//! * **One global pool.** Workers are spawned on first use. The worker
//!   count comes from `RAYON_NUM_THREADS` (unset or `0` → the machine's
//!   available parallelism). A count of `1` spawns no threads at all —
//!   every primitive degrades to straight-line sequential execution.
//! * **Injector queue, not per-worker deques.** Fork-join work is pushed
//!   onto one shared FIFO (`Mutex<VecDeque>` + `Condvar`). The unit of
//!   work is a *chunk* (a [`crate::iter::Producer`] leaf or one `join`
//!   arm), which the iterator bridge keeps coarse, so queue contention is
//!   a handful of lock acquisitions per parallel call — not per item.
//!   A chase-lev deque per worker would shave nanoseconds off steals this
//!   workload never makes hot.
//! * **Waiters help.** A thread blocked on a [`Latch`] (a `join` caller
//!   waiting for its stolen arm, a `scope` waiting for spawns) pops and
//!   executes other queued jobs instead of sleeping, so nested
//!   parallelism (pipeline → batched FFT) cannot deadlock: some thread
//!   always holds each pending chunk, every chunk terminates, and parked
//!   threads are woken whenever a latch is set or a job is injected.
//! * **Panics are contained.** Every stolen job runs under
//!   `catch_unwind`; the payload is carried back to the thread that owns
//!   the `join`/`scope` and resumed there. Workers never unwind, the
//!   queue mutex is never held across user code, and the pool stays
//!   usable after any panic.

use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Duration;

/// Hard cap on the worker count, so a typo'd `RAYON_NUM_THREADS` cannot
/// fork-bomb the host.
const MAX_THREADS: usize = 256;

/// `RAYON_NUM_THREADS`, read once per process at pool initialization.
/// Unset, empty/whitespace, or `0` → the machine's available parallelism.
/// Anything else that fails to parse is a configuration error and panics:
/// a silent fallback here would run a "pinned" benchmark or determinism
/// gate at the wrong thread count without any signal.
fn configured_threads() -> usize {
    let hw = || std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    match parse_num_threads(std::env::var("RAYON_NUM_THREADS").ok().as_deref()) {
        None | Some(0) => hw(),
        Some(n) => n.min(MAX_THREADS),
    }
}

/// Pure parse of a `RAYON_NUM_THREADS` value. `None`/empty/whitespace mean
/// "unset" (CI legs export `RAYON_NUM_THREADS=""` to mean exactly that);
/// a non-empty value must be a valid `usize` or we panic loudly.
fn parse_num_threads(raw: Option<&str>) -> Option<usize> {
    let trimmed = raw?.trim();
    if trimmed.is_empty() {
        return None;
    }
    match trimmed.parse::<usize>() {
        Ok(n) => Some(n),
        Err(e) => panic!("invalid RAYON_NUM_THREADS value {trimmed:?}: {e}"),
    }
}

/// Type-erased pointer to a job living on some owner's stack (or, for
/// `scope` spawns, on the heap). The owner guarantees the pointee stays
/// alive until the job's latch is set — that is the whole safety
/// contract, identical to rayon's `JobRef`.
#[derive(Copy, Clone)]
pub(crate) struct JobRef {
    data: *const (),
    execute_fn: unsafe fn(*const ()),
}

// SAFETY: a JobRef only crosses threads together with its owner's
// guarantee that the pointee outlives execution (enforced by latches /
// scope completion counts), and every Job type is Sync-safe to execute
// from another thread.
unsafe impl Send for JobRef {}

/// A unit of executable work reachable through a [`JobRef`].
pub(crate) trait Job {
    /// # Safety
    /// `this` must point to a live instance that has not yet executed.
    unsafe fn execute(this: *const Self);
}

unsafe fn execute_erased<T: Job>(data: *const ()) {
    unsafe { T::execute(data as *const T) }
}

impl JobRef {
    /// # Safety
    /// Caller keeps `job` alive until its completion signal fires.
    pub(crate) unsafe fn new<T: Job>(job: *const T) -> JobRef {
        JobRef { data: job as *const (), execute_fn: execute_erased::<T> }
    }

    unsafe fn execute(self) {
        unsafe { (self.execute_fn)(self.data) }
    }
}

/// One-shot completion flag. `set` is the *last* access the executing
/// thread makes to the job's memory; after a successful `probe` the owner
/// may free it.
pub(crate) struct Latch {
    done: AtomicBool,
}

impl Latch {
    pub(crate) fn new() -> Latch {
        Latch { done: AtomicBool::new(false) }
    }

    #[inline]
    pub(crate) fn probe(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }

    /// Mark complete and wake every thread parked in
    /// [`Registry::wait_while_helping`]. The empty critical section
    /// serializes against a waiter's probe-under-lock, so the wakeup
    /// cannot be missed.
    pub(crate) fn set(&self) {
        self.done.store(true, Ordering::Release);
        wake_all();
    }
}

/// Wake every parked thread after a completion-state change (latch set,
/// scope count reaching zero). The empty critical section serializes
/// with a waiter's check-under-lock so the wakeup cannot be missed.
pub(crate) fn wake_all() {
    let registry = Registry::global();
    drop(registry.lock_queue());
    registry.condvar.notify_all();
}

/// The global pool.
pub(crate) struct Registry {
    queue: Mutex<VecDeque<JobRef>>,
    condvar: Condvar,
    /// Logical concurrency: spawned workers + the participating caller.
    num_threads: usize,
}

impl Registry {
    /// The process-wide registry, spawning `num_threads - 1` workers on
    /// first use (the thread that issues parallel work is the N-th lane:
    /// it always executes one arm of each `join` itself and helps while
    /// waiting, so `RAYON_NUM_THREADS=n` yields n-way concurrency).
    pub(crate) fn global() -> &'static Registry {
        static REGISTRY: OnceLock<&'static Registry> = OnceLock::new();
        REGISTRY.get_or_init(|| {
            let num_threads = configured_threads();
            let registry: &'static Registry = Box::leak(Box::new(Registry {
                queue: Mutex::new(VecDeque::new()),
                condvar: Condvar::new(),
                num_threads,
            }));
            for i in 1..num_threads {
                std::thread::Builder::new()
                    .name(format!("fftmatvec-rayon-{i}"))
                    .spawn(move || registry.worker_loop())
                    .expect("spawning thread-pool worker");
            }
            registry
        })
    }

    pub(crate) fn num_threads(&self) -> usize {
        self.num_threads
    }

    /// Is there any point pushing work to the queue? False in
    /// single-thread mode, where no worker would ever pick it up and the
    /// primitives short-circuit to sequential execution.
    pub(crate) fn is_parallel(&self) -> bool {
        self.num_threads > 1
    }

    /// The queue lock is only ever held for O(queue length) pointer
    /// shuffling — never across user code — so a panicked lock holder is
    /// impossible and poisoning is shrugged off for robustness.
    fn lock_queue(&self) -> MutexGuard<'_, VecDeque<JobRef>> {
        self.queue.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Push a job and wake the parked threads. `notify_all` rather than
    /// `notify_one`: a single token can be consumed by a helping waiter
    /// whose own condition just completed (it returns without taking the
    /// job), which would leave workers asleep next to a runnable job.
    /// With the pool's single-digit worker counts the broadcast is cheap.
    pub(crate) fn inject(&self, job: JobRef) {
        self.lock_queue().push_back(job);
        self.condvar.notify_all();
    }

    /// Try to pull `job` back out of the queue before any worker takes
    /// it. `true` means the caller now owns it exclusively and must run
    /// it inline; `false` means a worker holds it — wait on its latch.
    /// Pointer identity is sound: the owner's stack frame is alive, so no
    /// other live job can share the address.
    pub(crate) fn retract(&self, job: JobRef) -> bool {
        let mut queue = self.lock_queue();
        // Injected at the back, consumed from the front: our own job is
        // almost always still the backmost entry.
        match queue.iter().rposition(|j| std::ptr::eq(j.data, job.data)) {
            Some(pos) => {
                queue.remove(pos);
                true
            }
            None => false,
        }
    }

    /// Block until `done()` — but spend the wait executing other queued
    /// jobs. This is what makes nested parallelism deadlock-free and what
    /// lets the caller's thread count as a full pool lane.
    pub(crate) fn wait_while_helping(&self, done: &dyn Fn() -> bool) {
        loop {
            if done() {
                return;
            }
            let job = self.lock_queue().pop_front();
            match job {
                Some(job) => unsafe { job.execute() },
                None => {
                    let queue = self.lock_queue();
                    if done() {
                        return;
                    }
                    if queue.is_empty() {
                        // Latch sets and injections both notify under the
                        // queue lock; the timeout is belt-and-suspenders
                        // against a lost wakeup ever wedging the pool.
                        let _ = self.condvar.wait_timeout(queue, Duration::from_millis(1));
                    }
                }
            }
        }
    }

    fn worker_loop(&self) {
        loop {
            let job = {
                let mut queue = self.lock_queue();
                loop {
                    if let Some(job) = queue.pop_front() {
                        break job;
                    }
                    queue = self.condvar.wait(queue).unwrap_or_else(PoisonError::into_inner);
                }
            };
            // Every Job implementation catches panics internally, so the
            // worker thread itself never unwinds and never dies.
            unsafe { job.execute() };
        }
    }
}

/// A `join` arm parked on the owner's stack while potentially executing
/// on another thread.
pub(crate) struct StackJob<F, R> {
    func: UnsafeCell<Option<F>>,
    result: UnsafeCell<Option<std::thread::Result<R>>>,
    pub(crate) latch: Latch,
}

// SAFETY: accesses to the UnsafeCells are serialized by the queue
// protocol — exactly one thread (the retracting owner *or* the worker
// that popped the JobRef) touches `func`, and the owner only reads
// `result` after the latch (Release/Acquire) proves the worker finished.
unsafe impl<F: Send, R: Send> Sync for StackJob<F, R> {}

impl<F, R> StackJob<F, R>
where
    F: FnOnce() -> R + Send,
    R: Send,
{
    pub(crate) fn new(func: F) -> StackJob<F, R> {
        StackJob {
            func: UnsafeCell::new(Some(func)),
            result: UnsafeCell::new(None),
            latch: Latch::new(),
        }
    }

    /// # Safety
    /// Caller keeps `self` alive until the latch is set (or retracts the
    /// job first).
    pub(crate) unsafe fn as_job_ref(&self) -> JobRef {
        unsafe { JobRef::new(self) }
    }

    /// Run on the owner's thread after a successful retract — panics
    /// propagate straight to the caller, no boxing needed.
    pub(crate) fn run_inline(self) -> R {
        let func = self.func.into_inner().expect("job executed twice");
        func()
    }

    /// # Safety
    /// Only after `self.latch.probe()` returned true.
    pub(crate) unsafe fn take_result(&self) -> std::thread::Result<R> {
        unsafe { (*self.result.get()).take().expect("job result taken twice") }
    }
}

impl<F, R> Job for StackJob<F, R>
where
    F: FnOnce() -> R + Send,
    R: Send,
{
    unsafe fn execute(this: *const Self) {
        let this = unsafe { &*this };
        let func = unsafe { (*this.func.get()).take().expect("job executed twice") };
        let result = panic::catch_unwind(AssertUnwindSafe(func));
        unsafe { *this.result.get() = Some(result) };
        // Last touch of `this`: after this line the owner may return and
        // pop the stack frame the job lives in.
        this.latch.set();
    }
}

/// Heap-allocated job for `scope` spawns (the spawning frame may return
/// to the scope body before the job runs, so it cannot live on the
/// stack; the scope's completion count keeps the *scope* alive instead).
pub(crate) struct HeapJob<F> {
    func: F,
}

impl<F: FnOnce() + Send> HeapJob<F> {
    /// Box the closure and leak it as a [`JobRef`]; `execute` reclaims
    /// the box exactly once.
    pub(crate) fn into_job_ref(func: F) -> JobRef {
        let boxed = Box::new(HeapJob { func });
        unsafe { JobRef::new(Box::into_raw(boxed)) }
    }
}

impl<F: FnOnce() + Send> Job for HeapJob<F> {
    unsafe fn execute(this: *const Self) {
        let boxed = unsafe { Box::from_raw(this as *mut Self) };
        // The closure is a scope wrapper that does its own catch_unwind
        // and completion accounting.
        (boxed.func)();
    }
}

#[cfg(test)]
mod tests {
    use super::parse_num_threads;

    #[test]
    fn unset_and_blank_mean_default() {
        assert_eq!(parse_num_threads(None), None);
        assert_eq!(parse_num_threads(Some("")), None);
        assert_eq!(parse_num_threads(Some("   ")), None);
        assert_eq!(parse_num_threads(Some("\t\n")), None);
    }

    #[test]
    fn valid_counts_parse() {
        assert_eq!(parse_num_threads(Some("0")), Some(0));
        assert_eq!(parse_num_threads(Some("1")), Some(1));
        assert_eq!(parse_num_threads(Some(" 8 ")), Some(8));
        // Values above MAX_THREADS parse fine; the clamp happens in
        // `configured_threads`.
        assert_eq!(parse_num_threads(Some("4096")), Some(4096));
    }

    #[test]
    #[should_panic(expected = "invalid RAYON_NUM_THREADS")]
    fn garbage_is_loud() {
        parse_num_threads(Some("four"));
    }

    #[test]
    #[should_panic(expected = "invalid RAYON_NUM_THREADS")]
    fn negative_is_loud() {
        parse_num_threads(Some("-2"));
    }

    #[test]
    #[should_panic(expected = "invalid RAYON_NUM_THREADS")]
    fn trailing_junk_is_loud() {
        parse_num_threads(Some("8x"));
    }
}
