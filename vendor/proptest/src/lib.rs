//! Offline stand-in for the subset of the [`proptest`] API this workspace
//! uses.
//!
//! The build environment cannot reach crates.io, so the workspace vendors
//! this shim as a path dependency named `proptest`. It keeps the public
//! surface the test suites consume — the [`proptest!`] macro with
//! `#![proptest_config(..)]`, `prop_assert!`/`prop_assert_eq!`/
//! `prop_assert_ne!`/`prop_assume!`, [`strategy::Strategy`] with `prop_map`/
//! `prop_filter`, range and tuple strategies, regex-literal string
//! strategies, `prop::collection::vec`, `prop::sample::select`,
//! `prop::num::f64::NORMAL`, and [`prop_oneof!`] — implemented over a
//! deterministic SplitMix64 generator.
//!
//! Differences from the real crate: no shrinking (a failing case reports
//! the generated inputs verbatim), no persistence files, and a fixed
//! per-test seed (override with `PROPTEST_SEED=<u64>`), which makes runs
//! reproducible in CI by default.
//!
//! [`proptest`]: https://docs.rs/proptest

pub mod test_runner {
    /// Per-test configuration; only the knobs the workspace touches.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases each test must pass.
        pub cases: u32,
        /// Upper bound on `prop_assume!` rejections before the run aborts
        /// as under-constrained. (`prop_filter` has its own fixed retry
        /// cap of 1000 consecutive draws, independent of this knob.)
        pub max_global_rejects: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases, ..Default::default() }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256, max_global_rejects: 65_536 }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// An assertion failed; the test as a whole fails.
        Fail(String),
        /// `prop_assume!` rejected the inputs; the case is re-drawn.
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Deterministic SplitMix64 stream seeded per test (name-hashed), so
    /// failures reproduce across runs and machines.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn deterministic(test_name: &str) -> Self {
            let mut seed: u64 = std::env::var("PROPTEST_SEED")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(0x5EED_F00D_CAFE_D00D);
            for b in test_name.bytes() {
                seed = seed.wrapping_mul(0x100_0000_01B3).wrapping_add(b as u64);
            }
            TestRng { state: seed }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)` with 53 random mantissa bits.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform in `[0, bound)`; `bound == 0` yields 0.
        pub fn below(&mut self, bound: u64) -> u64 {
            if bound == 0 {
                0
            } else {
                self.next_u64() % bound
            }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::rc::Rc;

    /// Value generator. Unlike the real crate there is no value tree or
    /// shrinking: `generate` draws one value per case.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn prop_filter<F>(self, whence: impl Into<String>, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter { inner: self, whence: whence.into(), f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// Type-erased, cheaply clonable strategy (used by [`prop_oneof!`]).
    ///
    /// [`prop_oneof!`]: crate::prop_oneof
    pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// `prop_map` adapter.
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// `prop_filter` adapter: redraws until the predicate accepts (bounded).
    #[derive(Clone)]
    pub struct Filter<S, F> {
        inner: S,
        whence: String,
        f: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1_000 {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter({:?}) rejected 1000 consecutive draws", self.whence);
        }
    }

    /// Strategy producing one fixed value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between type-erased alternatives ([`prop_oneof!`]).
    ///
    /// [`prop_oneof!`]: crate::prop_oneof
    #[derive(Clone)]
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128).wrapping_sub(self.start as u128);
                    let draw = ((rng.next_u64() as u128) % span) as $t;
                    self.start.wrapping_add(draw)
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                    let draw = ((rng.next_u64() as u128) % span) as $t;
                    lo.wrapping_add(draw)
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! signed_range_strategy {
        ($($t:ty => $u:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let draw = (rng.next_u64() as u128) % span;
                    (self.start as i128 + draw as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u128;
                    let draw = (rng.next_u64() as u128) % span;
                    (lo as i128 + draw as i128) as $t
                }
            }
        )*};
    }
    signed_range_strategy!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let u = rng.next_f64() as $t;
                    let v = self.start + u * (self.end - self.start);
                    // Rounding in the cast/FMA above can land exactly on
                    // the excluded upper bound; fall back to the (always
                    // in-range) start rather than violate the contract.
                    if v < self.end {
                        v
                    } else {
                        self.start
                    }
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    let u = rng.next_f64() as $t;
                    lo + u * (hi - lo)
                }
            }
        )*};
    }
    float_range_strategy!(f32, f64);

    /// String-literal strategies: the pattern is interpreted as the small
    /// regex dialect the suites use — literals, `[a-z0-9_]` classes (with
    /// ranges), and `{n}` / `{n,m}` / `?` / `*` / `+` quantifiers.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            generate_from_pattern(self, rng)
        }
    }

    fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            // One atom: a character class or a literal char.
            let atom: Vec<char> = if chars[i] == '[' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unclosed [ in pattern {pattern:?}"));
                let class = expand_class(&chars[i + 1..i + close]);
                i += close + 1;
                class
            } else {
                let c = if chars[i] == '\\' {
                    i += 1;
                    *chars
                        .get(i)
                        .unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}"))
                } else {
                    chars[i]
                };
                i += 1;
                vec![c]
            };

            // Optional quantifier.
            let (min, max) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("unclosed {{ in pattern {pattern:?}"));
                let body: String = chars[i + 1..i + close].iter().collect();
                i += close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => {
                        (lo.trim().parse::<usize>().unwrap(), hi.trim().parse::<usize>().unwrap())
                    }
                    None => {
                        let n = body.trim().parse::<usize>().unwrap();
                        (n, n)
                    }
                }
            } else if i < chars.len() && (chars[i] == '?' || chars[i] == '*' || chars[i] == '+') {
                let q = chars[i];
                i += 1;
                match q {
                    '?' => (0, 1),
                    '*' => (0, 8),
                    _ => (1, 8),
                }
            } else {
                (1, 1)
            };

            let count = min + rng.below((max - min + 1) as u64) as usize;
            for _ in 0..count {
                let k = rng.below(atom.len() as u64) as usize;
                out.push(atom[k]);
            }
        }
        out
    }

    fn expand_class(body: &[char]) -> Vec<char> {
        let mut set = Vec::new();
        let mut i = 0;
        while i < body.len() {
            if i + 2 < body.len() && body[i + 1] == '-' {
                let (lo, hi) = (body[i] as u32, body[i + 2] as u32);
                for c in lo..=hi {
                    set.push(char::from_u32(c).unwrap());
                }
                i += 3;
            } else {
                set.push(body[i]);
                i += 1;
            }
        }
        assert!(!set.is_empty(), "empty character class");
        set
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
}

/// The `prop::` namespace (`prop::collection`, `prop::sample`, `prop::num`).
pub mod prop {
    pub mod collection {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Length specification for [`vec()`]: an exact `usize`, `lo..hi`,
        /// or `lo..=hi`.
        #[derive(Debug, Clone, Copy)]
        pub struct SizeRange {
            min: usize,
            max_inclusive: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange { min: n, max_inclusive: n }
            }
        }
        impl From<std::ops::Range<usize>> for SizeRange {
            fn from(r: std::ops::Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                SizeRange { min: r.start, max_inclusive: r.end - 1 }
            }
        }
        impl From<std::ops::RangeInclusive<usize>> for SizeRange {
            fn from(r: std::ops::RangeInclusive<usize>) -> Self {
                SizeRange { min: *r.start(), max_inclusive: *r.end() }
            }
        }

        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Clone> Clone for VecStrategy<S> {
            fn clone(&self) -> Self {
                VecStrategy { element: self.element.clone(), size: self.size }
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = self.size.max_inclusive - self.size.min + 1;
                let len = self.size.min + rng.below(span as u64) as usize;
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// `prop::collection::vec(element, size)`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy { element, size: size.into() }
        }
    }

    pub mod sample {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Uniform choice from a fixed set (`prop::sample::select`).
        #[derive(Debug, Clone)]
        pub struct Select<T: Clone> {
            options: Vec<T>,
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn generate(&self, rng: &mut TestRng) -> T {
                let i = rng.below(self.options.len() as u64) as usize;
                self.options[i].clone()
            }
        }

        pub fn select<T: Clone>(options: impl Into<Vec<T>>) -> Select<T> {
            let options = options.into();
            assert!(!options.is_empty(), "select from empty set");
            Select { options }
        }
    }

    pub mod num {
        pub mod f64 {
            use crate::strategy::Strategy;
            use crate::test_runner::TestRng;

            /// Strategy for normal (non-zero, non-subnormal, finite) f64
            /// values of either sign, log-uniform over the exponent range.
            #[derive(Debug, Clone, Copy)]
            pub struct NormalStrategy;

            /// `prop::num::f64::NORMAL`.
            pub const NORMAL: NormalStrategy = NormalStrategy;

            impl Strategy for NormalStrategy {
                type Value = f64;
                fn generate(&self, rng: &mut TestRng) -> f64 {
                    let sign = if rng.next_u64() & 1 == 0 { 1.0 } else { -1.0 };
                    let exp = rng.below(2045) as i32 - 1022; // [-1022, 1022]
                    let mantissa = 1.0 + rng.next_f64(); // [1, 2)
                    sign * mantissa * (exp as f64).exp2()
                }
            }
        }
    }
}

/// Everything a test file needs via `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        // `match` instead of `if !cond` keeps clippy's negated-comparison
        // lints quiet inside test bodies.
        match $cond {
            true => {}
            false => {
                return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                    format!("assertion failed: {} at {}:{}", stringify!($cond), file!(), line!()),
                ));
            }
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        match $cond {
            true => {}
            false => {
                return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                    format!("{} at {}:{}", format!($($fmt)*), file!(), line!()),
                ));
            }
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::fail(format!(
                            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}` at {}:{}",
                            __l, __r, file!(), line!()
                        )),
                    );
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::fail(format!(
                            "{}: `{:?}` != `{:?}` at {}:{}",
                            format!($($fmt)*), __l, __r, file!(), line!()
                        )),
                    );
                }
            }
        }
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if *__l == *__r {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!(
                            "assertion failed: `left != right` (both `{:?}`) at {}:{}",
                            __l,
                            file!(),
                            line!()
                        ),
                    ));
                }
            }
        }
    };
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        match $cond {
            true => {}
            false => {
                return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                    stringify!($cond),
                ));
            }
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// The test-definition macro. Each `fn name(pat in strategy, ..) { body }`
/// becomes a `#[test]` that draws `config.cases` accepted inputs and runs
/// the body, which may early-return via the `prop_*` assertion macros.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strategy:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $config;
            let mut __rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            let mut __accepted: u32 = 0;
            let mut __rejected: u32 = 0;
            while __accepted < __config.cases {
                let __values = ($($crate::strategy::Strategy::generate(&($strategy), &mut __rng),)*);
                let __desc = format!("{:?}", &__values);
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        #[allow(unused_parens, irrefutable_let_patterns)]
                        let ($($pat,)*) = __values;
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match __outcome {
                    ::std::result::Result::Ok(()) => __accepted += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {
                        __rejected += 1;
                        if __rejected > __config.max_global_rejects {
                            panic!(
                                "proptest {}: too many prop_assume! rejections ({})",
                                stringify!($name), __rejected
                            );
                        }
                    }
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(__msg)) => {
                        panic!(
                            "proptest {} failed after {} passing case(s)\n  {}\n  inputs: {}",
                            stringify!($name), __accepted, __msg, __desc
                        );
                    }
                }
            }
        }
        $crate::__proptest_items!(($config) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_are_in_bounds() {
        let mut rng = crate::test_runner::TestRng::deterministic("ranges");
        for _ in 0..1_000 {
            let x = Strategy::generate(&(-3.0f64..7.0), &mut rng);
            assert!((-3.0..7.0).contains(&x));
            let n = Strategy::generate(&(1usize..9), &mut rng);
            assert!((1..9).contains(&n));
            let s = Strategy::generate(&(0u64..u64::MAX), &mut rng);
            let _ = s;
        }
    }

    #[test]
    fn regex_patterns_generate_identifiers() {
        let mut rng = crate::test_runner::TestRng::deterministic("regex");
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-z][a-z0-9_]{0,8}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 9);
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
    }

    #[test]
    fn oneof_select_vec_compose() {
        let mut rng = crate::test_runner::TestRng::deterministic("compose");
        let strat = prop::collection::vec(
            prop_oneof![
                prop::sample::select(vec!["a".to_string(), "b".to_string()]),
                "[x-z]{2}".prop_map(|s| s),
            ],
            1..5,
        );
        for _ in 0..100 {
            let v = Strategy::generate(&strat, &mut rng);
            assert!(!v.is_empty() && v.len() < 5);
            for s in v {
                assert!(s == "a" || s == "b" || s.chars().all(|c| ('x'..='z').contains(&c)));
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_roundtrip(x in -10.0f64..10.0, n in 0usize..16) {
            prop_assume!(n != 3);
            prop_assert!(x.abs() <= 10.0);
            prop_assert_eq!(n, n, "identity must hold for {}", n);
            prop_assert_ne!(n, 3);
        }
    }
}
