//! Offline stand-in for the subset of the [`criterion`] API the bench
//! harnesses use.
//!
//! The build environment cannot reach crates.io, so the workspace vendors
//! this shim as a path dependency named `criterion`. It implements real
//! wall-clock measurement (median of timed batches after a short warm-up)
//! with plain-text reporting — no statistical analysis, plots, or saved
//! baselines. The measured API surface matches what the four bench files
//! call: `criterion_group!`/`criterion_main!`, `Criterion::benchmark_group`,
//! `bench_function`/`bench_with_input`, `sample_size`, `throughput`,
//! `BenchmarkId`, `Throughput`, and `black_box`.
//!
//! [`criterion`]: https://docs.rs/criterion

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box`, criterion's optimizer barrier.
pub use std::hint::black_box;

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Units-of-work declaration used to report throughput next to time.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
    BytesDecimal(u64),
}

/// Measurement driver handed to the closure of `bench_function`.
pub struct Bencher {
    iters_per_sample: u64,
    samples: usize,
    measured: Vec<Duration>,
}

impl Bencher {
    /// Times `routine` over several batches and records per-iteration cost.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and batch sizing: aim for samples of at least ~1ms.
        let mut iters = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || iters >= self.iters_per_sample {
                break;
            }
            iters = (iters * 4).min(self.iters_per_sample);
        }
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.measured.push(start.elapsed() / iters as u32);
        }
    }

    fn median(&self) -> Option<Duration> {
        if self.measured.is_empty() {
            return None;
        }
        let mut sorted = self.measured.clone();
        sorted.sort();
        Some(sorted[sorted.len() / 2])
    }
}

fn report(name: &str, bencher: &Bencher, throughput: Option<Throughput>) {
    let Some(median) = bencher.median() else {
        println!("{name:<48} (no measurement)");
        return;
    };
    let per_iter = median.as_secs_f64();
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!("  {:.3e} elem/s", n as f64 / per_iter),
        Throughput::Bytes(n) | Throughput::BytesDecimal(n) => {
            format!("  {:.3e} B/s", n as f64 / per_iter)
        }
    });
    println!("{name:<48} time: [{:>12}]{}", format_duration(median), rate.unwrap_or_default());
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// A named set of related benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    #[allow(dead_code)]
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn measurement_time(&mut self, _dur: Duration) -> &mut Self {
        self
    }

    pub fn warm_up_time(&mut self, _dur: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            iters_per_sample: 1 << 20,
            samples: self.sample_size.min(16),
            measured: Vec::new(),
        };
        f(&mut bencher);
        report(&format!("{}/{}", self.name, id.id), &bencher, self.throughput);
        self
    }

    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(self) {}
}

/// Top-level benchmark driver (shim: plain-text reporting only).
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Accepts and ignores the harness CLI arguments cargo passes.
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), throughput: None, sample_size: 10 }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut group = self.benchmark_group(id.id.clone());
        group.bench_function("", f);
        group.finish();
        self
    }

    pub fn final_summary(&self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::Criterion::default().configure_from_args().final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_measures_and_reports() {
        let mut c = Criterion::default().configure_from_args();
        let mut g = c.benchmark_group("shim");
        g.sample_size(4);
        g.throughput(Throughput::Elements(8));
        let mut calls = 0u64;
        g.bench_function(BenchmarkId::new("count", 8), |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            })
        });
        g.finish();
        assert!(calls > 0);
    }
}
